// E7 — interference vs invalidation (§2): the runtime monitor watches every
// live transaction's active assertion while a payroll mix executes under a
// randomized deterministic schedule. It counts *invalidations* — statically
// interfering statements whose interleaving actually falsified an active
// assertion — per isolation level, and reports the monitoring overhead.

#include <chrono>

#include "bench/bench_util.h"
#include "sem/rt/monitor.h"
#include "workload/workload.h"

namespace semcor {
namespace {

struct MonitorRun {
  long invalidations = 0;
  long violated_pres = 0;
  long evaluations = 0;
  long steps = 0;
  double wall_ms = 0;
};

MonitorRun RunRounds(IsoLevel print_level, bool with_monitor, int rounds) {
  Workload w = MakePayrollWorkload();
  MonitorRun out;
  Rng rng(0xE7);
  const auto start = std::chrono::steady_clock::now();
  for (int round = 0; round < rounds; ++round) {
    Store store;
    LockManager locks;
    TxnManager mgr(&store, &locks);
    if (!w.setup(&store).ok()) continue;
    StepDriver driver(&mgr);
    std::unique_ptr<InvalidationMonitor> monitor;
    if (with_monitor) {
      monitor = std::make_unique<InvalidationMonitor>(&store, &driver);
    }
    // Two Hours writers and two readers on overlapping employees.
    for (int i = 0; i < 2; ++i) {
      driver.Add(w.instantiate("Hours", rng), IsoLevel::kReadCommitted);
      driver.Add(w.instantiate("Print_Records", rng), print_level);
    }
    for (int step = 0; step < 64 && !driver.AllDone(); ++step) {
      driver.Step(static_cast<int>(rng.Uniform(0, driver.size() - 1)));
      ++out.steps;
    }
    driver.RunRoundRobin();
    if (monitor) {
      out.invalidations += static_cast<long>(monitor->events().size());
      out.violated_pres += monitor->violated_preconditions();
      out.evaluations += monitor->evaluations();
    }
  }
  const auto end = std::chrono::steady_clock::now();
  out.wall_ms = std::chrono::duration<double, std::milli>(end - start).count();
  return out;
}

}  // namespace
}  // namespace semcor

int main() {
  using namespace semcor;
  bench::Banner("E7: runtime invalidation monitoring (payroll, Example 2)");

  constexpr int kRounds = 150;
  bench::JsonReport json("E7");
  json.Scalar("rounds_per_level", kRounds);
  bench::Table table({"Print_Records level", "transient invalidations",
                      "violated pres at exec", "assertion evals", "steps",
                      "wall ms"});
  for (IsoLevel level :
       {IsoLevel::kReadUncommitted, IsoLevel::kReadCommitted,
        IsoLevel::kRepeatableRead}) {
    MonitorRun r = RunRounds(level, /*with_monitor=*/true, kRounds);
    table.AddRow({IsoLevelName(level), std::to_string(r.invalidations),
                  std::to_string(r.violated_pres),
                  std::to_string(r.evaluations), std::to_string(r.steps),
                  bench::Fmt(r.wall_ms)});
  }
  table.Print();
  json.AddTable("invalidations", table);

  bench::Banner("monitoring overhead");
  MonitorRun with = RunRounds(IsoLevel::kReadUncommitted, true, kRounds);
  MonitorRun without = RunRounds(IsoLevel::kReadUncommitted, false, kRounds);
  bench::Table overhead({"configuration", "wall ms", "ms/step x1000"});
  overhead.AddRow({"with monitor", bench::Fmt(with.wall_ms),
                   bench::Fmt(1000.0 * with.wall_ms / with.steps, 2)});
  overhead.AddRow({"without monitor", bench::Fmt(without.wall_ms),
                   bench::Fmt(1000.0 * without.wall_ms / without.steps, 2)});
  overhead.Print();
  json.AddTable("overhead", overhead);
  json.Write();
  std::printf(
      "\nExpected shape: invalidations occur at READ-UNCOMMITTED (dirty "
      "half-updates of\nHours) and vanish at READ-COMMITTED and above — "
      "interference without invalidation.\n");
  return 0;
}
