// E1 — analysis-cost reduction (paper §2 and §3.6).
//
// Reproduces the claims that the per-level semantic conditions shrink the
// Owicki-Gries proof burden: (KN)^2 triples in general, but e.g. only K^2
// for SNAPSHOT regardless of transaction length. Prints the obligation
// counts for every paper workload and a synthetic K/N sweep.

#include "bench/bench_util.h"
#include "sem/check/obligations.h"
#include "sem/prog/builder.h"
#include "workload/workload.h"

namespace semcor {
namespace {

Application Synthetic(int k, int n) {
  Application app;
  app.name = StrCat("synthetic K=", k, " N=", n);
  for (int t = 0; t < k; ++t) {
    TransactionType type;
    type.name = StrCat("T", t);
    const int reads = n / 2;
    type.make = [t, reads, n](const std::map<std::string, Value>&) {
      ProgramBuilder b(StrCat("T", t));
      for (int i = 0; i < reads; ++i) {
        b.Pre(True()).Read(StrCat("X", i), StrCat("x", t, "_", i));
      }
      for (int i = 0; i < n - reads; ++i) {
        b.Pre(True()).Write(StrCat("x", t, "_", i), Lit(int64_t{0}));
      }
      return b.Build({});
    };
    type.analysis_scenarios = {{}};
    app.types.push_back(std::move(type));
  }
  return app;
}

void Report(const std::string& label, const ObligationCounts& counts,
            bench::JsonReport* json) {
  bench::Table table({"application", "K", "N(total)", "naive OG", "RU", "RC",
                      "RC-FCW", "RR", "SER", "SNAPSHOT"});
  table.AddRow({label, std::to_string(counts.num_instances),
                std::to_string(counts.total_statements),
                std::to_string(counts.naive_owicki_gries),
                std::to_string(counts.per_level.at(IsoLevel::kReadUncommitted)),
                std::to_string(counts.per_level.at(IsoLevel::kReadCommitted)),
                std::to_string(counts.per_level.at(IsoLevel::kReadCommittedFcw)),
                std::to_string(counts.per_level.at(IsoLevel::kRepeatableRead)),
                std::to_string(counts.per_level.at(IsoLevel::kSerializable)),
                std::to_string(counts.per_level.at(IsoLevel::kSnapshot))});
  table.Print();
  json->AddTable(label, table);
}

}  // namespace
}  // namespace semcor

int main() {
  using namespace semcor;
  bench::Banner("E1: non-interference obligations per isolation level");
  bench::JsonReport json("E1");

  std::printf("Paper workloads:\n\n");
  Report("banking (Ex.3)", CountObligations(MakeBankingWorkload().app), &json);
  Report("payroll (Ex.2)", CountObligations(MakePayrollWorkload().app), &json);
  Report("mailing (Ex.1)", CountObligations(MakeMailingWorkload().app), &json);
  Report("orders (sec.6)", CountObligations(MakeOrdersWorkload(false).app),
         &json);
  Report("orders 1/day", CountObligations(MakeOrdersWorkload(true).app),
         &json);
  Report("tpcc-lite", CountObligations(MakeTpccWorkload().app), &json);

  std::printf(
      "\nSynthetic sweep (conventional app, K types x N statements):\n"
      "SNAPSHOT stays K^2 while the naive Owicki-Gries burden grows with "
      "(KN)^2.\n\n");
  bench::Table sweep({"K", "N", "naive OG", "RU", "RC", "SNAPSHOT",
                      "SNAPSHOT==K^2?"});
  for (int k : {2, 4, 8, 16}) {
    for (int n : {4, 16, 64}) {
      ObligationCounts c = CountObligations(Synthetic(k, n));
      sweep.AddRow({std::to_string(k), std::to_string(n),
                    std::to_string(c.naive_owicki_gries),
                    std::to_string(c.per_level.at(IsoLevel::kReadUncommitted)),
                    std::to_string(c.per_level.at(IsoLevel::kReadCommitted)),
                    std::to_string(c.per_level.at(IsoLevel::kSnapshot)),
                    c.per_level.at(IsoLevel::kSnapshot) ==
                            static_cast<long>(k) * k
                        ? "yes"
                        : "NO"});
    }
  }
  sweep.Print();
  json.AddTable("synthetic_sweep", sweep);
  json.Write();
  return 0;
}
