// E5 — the paper's stated future work (§7): "use our theorems to analyze
// the TPC-C benchmark transactions and run them at a combination of
// isolation levels to evaluate the performance." TPC-C-lite transactions
// run under (i) all-SERIALIZABLE, (ii) the advisor's mixed levels, and
// (iii) unsafe all-READ-COMMITTED; throughput and semantic violations are
// reported for each.

#include "bench/bench_util.h"
#include "bench/perf_harness.h"

int main() {
  using namespace semcor;
  bench::Banner("E5: TPC-C-lite at a combination of isolation levels");

  Workload w = MakeTpccWorkload(/*warehouses=*/2, /*districts=*/2,
                                /*customers=*/8, /*items=*/16);

  struct Config {
    const char* label;
    std::map<std::string, IsoLevel> levels;
  };
  std::vector<Config> configs = {
      {"all SERIALIZABLE", bench::AllAt(w, IsoLevel::kSerializable)},
      {"advisor levels", w.paper_levels},
      {"all READ-COMMITTED (unsafe)",
       bench::AllAt(w, IsoLevel::kReadCommitted)},
  };

  bench::JsonReport json("E5");
  json.Scalar("threads", 4);
  json.Scalar("items_per_thread", 100);
  json.Scalar("rounds", 12);
  bench::Table table({"policy", "txns/s", "p50 us", "p95 us", "p99 us",
                      "abort %", "deadlocks", "violating rounds"});
  bench::Table jt(bench::PerfJsonHeaders());
  for (const Config& config : configs) {
    bench::PerfResult r = bench::RunRounds(
        w, config.levels, IsoLevel::kSerializable, /*threads=*/4,
        /*items_per_thread=*/100, /*rounds=*/12);
    table.AddRow({config.label, bench::Fmt(r.tps, 0), bench::Fmt(r.p50_us),
                  bench::Fmt(r.p95_us), bench::Fmt(r.p99_us),
                  bench::Fmt(r.AbortRate()), std::to_string(r.deadlocks),
                  StrCat(r.violation_rounds, "/", r.rounds)});
    jt.AddRow(bench::PerfJsonRow(config.label, r));
  }
  table.Print();
  json.AddTable("policies", jt);

  std::printf("\nAdvisor level assignment:\n");
  bench::Table advisor({"type", "level"});
  for (const auto& [type, level] : w.paper_levels) {
    std::printf("  %-14s -> %s\n", type.c_str(), IsoLevelName(level));
    advisor.AddRow({type, IsoLevelName(level)});
  }
  json.AddTable("advisor_levels", advisor);
  json.Write();
  return 0;
}
