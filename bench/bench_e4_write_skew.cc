// E4 — Example 3 / the write-skew anomaly: Withdraw_sav and Withdraw_ch on
// the same account are each correct alone, but SNAPSHOT isolation admits
// interleavings that drive the combined balance negative (their write sets
// are disjoint, defeating first-committer-wins). SERIALIZABLE prevents it.
//
// Contention is swept through the number of accounts: fewer accounts means
// more same-account concurrent withdrawals and a higher anomaly rate.

#include "bench/bench_util.h"
#include "sem/rt/oracle.h"
#include "txn/driver.h"
#include "workload/workload.h"

namespace semcor {
namespace {

/// One adversarial round: a pair of cross-account-leg withdrawals plus a
/// deposit, interleaved by a random schedule under the step driver. Returns
/// whether the final state violated semantic correctness, plus commits.
struct RoundOutcome {
  bool violated = false;
  int committed = 0;
  int aborted = 0;
};

RoundOutcome RunRound(const Workload& w, IsoLevel level, int accounts,
                      Rng* rng) {
  Store store;
  LockManager locks;
  TxnManager mgr(&store, &locks);
  if (!w.setup(&store).ok()) return {};
  MapEvalContext initial = store.SnapshotToMap();
  CommitLog log;
  StepDriver driver(&mgr, &log);

  auto program = [&](const std::string& type, int64_t account, int64_t amount) {
    for (const TransactionType& t : w.app.types) {
      if (t.name == type) {
        return std::make_shared<TxnProgram>(
            t.make({{"i", Value::Int(account)},
                    {type[0] == 'W' ? "w" : "d", Value::Int(amount)}}));
      }
    }
    return std::shared_ptr<TxnProgram>();
  };

  // Withdrawals sized so that one succeeds alone but two overdraw.
  const int64_t acct1 = rng->Uniform(0, accounts - 1);
  const int64_t acct2 = rng->Uniform(0, accounts - 1);
  driver.Add(program("Withdraw_sav", acct1, 15), level);
  driver.Add(program("Withdraw_ch", acct2, 15), level);
  driver.Add(program("Deposit_sav", rng->Uniform(0, accounts - 1), 3), level);

  // Random interleaving, then drain.
  for (int step = 0; step < 64 && !driver.AllDone(); ++step) {
    driver.Step(static_cast<int>(rng->Uniform(0, driver.size() - 1)));
  }
  driver.RunRoundRobin();

  RoundOutcome out;
  for (int i = 0; i < driver.size(); ++i) {
    if (driver.run(i).outcome() == StepOutcome::kCommitted) {
      ++out.committed;
    } else {
      ++out.aborted;
    }
  }
  OracleReport report =
      CheckSemanticCorrectness(initial, store, log, w.app.invariant);
  out.violated = !report.ok();
  return out;
}

}  // namespace
}  // namespace semcor

int main() {
  using namespace semcor;
  bench::Banner("E4: write skew under SNAPSHOT vs SERIALIZABLE (Example 3)");

  constexpr int kRounds = 300;
  bench::Table table({"accounts", "level", "violation %", "commit %",
                      "rounds"});
  for (int accounts : {1, 2, 4, 8}) {
    for (IsoLevel level : {IsoLevel::kSnapshot, IsoLevel::kSerializable}) {
      Workload w = MakeBankingWorkload(accounts);
      Rng rng(0xE4 + accounts);
      int violations = 0;
      long committed = 0, total = 0;
      for (int round = 0; round < kRounds; ++round) {
        RoundOutcome out = RunRound(w, level, accounts, &rng);
        violations += out.violated ? 1 : 0;
        committed += out.committed;
        total += out.committed + out.aborted;
      }
      table.AddRow({std::to_string(accounts), IsoLevelName(level),
                    bench::Fmt(100.0 * violations / kRounds),
                    bench::Fmt(100.0 * committed / total),
                    std::to_string(kRounds)});
    }
  }
  table.Print();
  bench::JsonReport json("E4");
  json.Scalar("rounds_per_cell", kRounds);
  json.AddTable("write_skew", table);
  json.Write();
  std::printf(
      "\nExpected shape: SNAPSHOT violation rate grows as contention rises "
      "(fewer accounts);\nSERIALIZABLE shows zero violations at the cost of "
      "blocking/aborts.\n");
  return 0;
}
