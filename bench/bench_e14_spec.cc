// E14 — conformance-spec sweep (ISSUE 9 tentpole).
//
// Executes every isolation-tester spec in tests/specs at all seven
// isolation levels, diffs the per-level outcome rows against the
// checked-in goldens, and aggregates the anomaly ladder: how many
// committed executions each level leaves non-serializable, how many
// aborts each abort mechanism (deadlock backstop, first-committer-wins,
// SSI) contributes, and SSI's false-positive split.
//
// The headline fidelity number: two-ids.spec must reproduce exactly the
// aborts postgres documents for its 90 interleavings — 16 SSI aborts, of
// which 12 are false positives (s3 not declared READ ONLY) and 4 prevent
// the read-only anomaly — while plain snapshot isolation commits all 270
// transactions. The process exits non-zero on any golden disagreement,
// so ci.sh can gate on 100% conformance.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include <dirent.h>

#include "bench/bench_util.h"
#include "spec/compile.h"
#include "spec/runner.h"
#include "spec/spec.h"

#ifndef SEMCOR_SPECS_DIR
#define SEMCOR_SPECS_DIR "tests/specs"
#endif

namespace semcor::spec {
namespace {

std::vector<std::string> ListSpecs(const std::string& dir_path) {
  std::vector<std::string> names;
  DIR* dir = opendir(dir_path.c_str());
  if (dir == nullptr) return names;
  while (dirent* e = readdir(dir)) {
    const std::string name = e->d_name;
    if (name.size() > 5 && name.substr(name.size() - 5) == ".spec") {
      names.push_back(name);
    }
  }
  closedir(dir);
  std::sort(names.begin(), names.end());
  return names;
}

int Run() {
  const std::string specs_dir = SEMCOR_SPECS_DIR;
  const std::vector<std::string> files = ListSpecs(specs_dir);

  bench::Banner("E14: conformance specs at every isolation level");
  std::printf("spec dir: %s (%zu specs)\n\n", specs_dir.c_str(),
              files.size());

  bench::JsonReport json("E14");
  json.Scalar("specs_found", static_cast<long>(files.size()));

  long specs_run = 0;
  long specs_agreeing = 0;
  std::map<IsoLevel, LevelOutcome> totals;
  LevelOutcome two_ids_ssi;
  bool saw_two_ids = false;
  LevelOutcome two_ids_ro_ssi;
  bool saw_two_ids_ro = false;

  for (const std::string& file : files) {
    Result<IsolationSpec> parsed = ParseSpecFile(specs_dir + "/" + file);
    if (!parsed.ok()) {
      std::fprintf(stderr, "E14: %s\n", parsed.status().message().c_str());
      continue;
    }
    Result<CompiledSpec> compiled = CompileSpec(parsed.value());
    if (!compiled.ok()) {
      std::fprintf(stderr, "E14: %s\n", compiled.status().message().c_str());
      continue;
    }
    SpecRunner runner(compiled.value());
    Status init = runner.Init();
    if (!init.ok()) {
      std::fprintf(stderr, "E14: %s: %s\n", file.c_str(),
                   init.message().c_str());
      continue;
    }
    Result<SpecReport> report = runner.RunAllLevels();
    if (!report.ok()) {
      std::fprintf(stderr, "E14: %s: %s\n", file.c_str(),
                   report.status().message().c_str());
      continue;
    }
    ++specs_run;

    bool agrees = true;
    const std::string golden_path =
        specs_dir + "/golden/" + parsed.value().name + ".golden";
    Result<std::string> text = ReadTextFile(golden_path);
    Result<SpecReport> golden =
        text.ok() ? ParseGolden(text.value(), golden_path)
                  : Result<SpecReport>(text.status());
    if (!golden.ok()) {
      std::fprintf(stderr, "E14: %s\n", golden.status().message().c_str());
      agrees = false;
    } else if (golden.value().levels.size() !=
               report.value().levels.size()) {
      agrees = false;
    } else {
      for (size_t i = 0; i < report.value().levels.size(); ++i) {
        if (report.value().levels[i] != golden.value().levels[i]) {
          std::fprintf(stderr, "E14: %s diverges from golden:\n  %s\n  %s\n",
                       file.c_str(),
                       golden.value().levels[i].Row().c_str(),
                       report.value().levels[i].Row().c_str());
          agrees = false;
        }
      }
    }
    if (agrees) ++specs_agreeing;
    std::printf("%-22s %s\n", parsed.value().name.c_str(),
                agrees ? "conforms" : "DIVERGES");

    for (const LevelOutcome& o : report.value().levels) {
      LevelOutcome& t = totals[o.level];
      t.level = o.level;
      t.perms += o.perms;
      t.committed += o.committed;
      t.aborted += o.aborted;
      t.deadlock += o.deadlock;
      t.fcw += o.fcw;
      t.ssi += o.ssi;
      t.ssi_fp += o.ssi_fp;
      t.ssi_req += o.ssi_req;
      t.nonser += o.nonser;
      t.inv_viol += o.inv_viol;
      t.replay_div += o.replay_div;
      if (parsed.value().name == "two-ids" && o.level == IsoLevel::kSsi) {
        two_ids_ssi = o;
        saw_two_ids = true;
      }
      if (parsed.value().name == "two-ids-ro" && o.level == IsoLevel::kSsi) {
        two_ids_ro_ssi = o;
        saw_two_ids_ro = true;
      }
    }
  }

  bench::Table table({"level", "perms", "committed", "aborted", "deadlock",
                      "fcw", "ssi", "ssi_fp", "ssi_req", "nonser"});
  for (const auto& [level, t] : totals) {
    table.AddRow({IsoLevelName(level), std::to_string(t.perms),
                  std::to_string(t.committed), std::to_string(t.aborted),
                  std::to_string(t.deadlock), std::to_string(t.fcw),
                  std::to_string(t.ssi), std::to_string(t.ssi_fp),
                  std::to_string(t.ssi_req), std::to_string(t.nonser)});
  }
  std::printf("\n");
  table.Print();
  json.AddTable("per_level_totals", table);

  json.Scalar("specs_run", specs_run);
  json.Scalar("specs_agreeing", specs_agreeing);
  for (const auto& [level, t] : totals) {
    std::string key = IsoLevelName(level);
    for (char& c : key) c = c == '-' ? '_' : static_cast<char>(tolower(c));
    json.Scalar(key + "_nonser", t.nonser);
    json.Scalar(key + "_aborted", t.aborted);
  }
  const LevelOutcome& ssi_totals = totals[IsoLevel::kSsi];
  json.Scalar("ssi_aborts", ssi_totals.ssi);
  json.Scalar("ssi_false_positive_aborts", ssi_totals.ssi_fp);
  json.Scalar("ssi_required_aborts", ssi_totals.ssi_req);
  json.Scalar("two_ids_ssi_aborts", saw_two_ids ? two_ids_ssi.ssi : -1);
  json.Scalar("two_ids_ssi_false_positives",
              saw_two_ids ? two_ids_ssi.ssi_fp : -1);
  json.Scalar("two_ids_ssi_required", saw_two_ids ? two_ids_ssi.ssi_req : -1);
  json.Scalar("two_ids_ro_ssi_aborts",
              saw_two_ids_ro ? two_ids_ro_ssi.ssi : -1);
  json.Scalar("two_ids_ro_ssi_false_positives",
              saw_two_ids_ro ? two_ids_ro_ssi.ssi_fp : -1);
  json.Scalar("two_ids_ro_ssi_required",
              saw_two_ids_ro ? two_ids_ro_ssi.ssi_req : -1);

  const bool two_ids_exact = saw_two_ids && two_ids_ssi.ssi == 16 &&
                             two_ids_ssi.ssi_fp == 12 &&
                             two_ids_ssi.ssi_req == 4;
  json.Scalar("two_ids_fidelity", two_ids_exact ? 1L : 0L);
  // The other half of the documented fidelity target: with s3 declared
  // READ ONLY the optimization must erase exactly the 12 false positives.
  const bool two_ids_ro_exact = saw_two_ids_ro && two_ids_ro_ssi.ssi == 4 &&
                                two_ids_ro_ssi.ssi_fp == 0 &&
                                two_ids_ro_ssi.ssi_req == 4;
  json.Scalar("two_ids_ro_fidelity", two_ids_ro_exact ? 1L : 0L);
  // SSI must leave nothing non-serializable committed, ever.
  json.Scalar("ssi_nonser", ssi_totals.nonser);
  json.Write();

  std::printf(
      "\n%ld/%ld specs conform; two-ids SSI %ld aborts (%ld fp, %ld req)\n",
      specs_agreeing, specs_run, two_ids_ssi.ssi, two_ids_ssi.ssi_fp,
      two_ids_ssi.ssi_req);

  if (specs_run == 0 || specs_agreeing != specs_run) return 1;
  if (!two_ids_exact) {
    std::fprintf(stderr,
                 "E14: two-ids fidelity target missed (want 16/12/4)\n");
    return 1;
  }
  if (!two_ids_ro_exact) {
    std::fprintf(stderr,
                 "E14: two-ids-ro fidelity target missed (want 4/0/4)\n");
    return 1;
  }
  if (ssi_totals.nonser != 0) {
    std::fprintf(stderr, "E14: SSI admitted a non-serializable run\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace semcor::spec

int main() { return semcor::spec::Run(); }
