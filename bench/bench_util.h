#ifndef SEMCOR_BENCH_BENCH_UTIL_H_
#define SEMCOR_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/str_util.h"

namespace semcor::bench {

/// Minimal fixed-width table printer for the experiment reports (the paper
/// has no plots; we print the rows its claims correspond to).
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
    for (const auto& row : rows_) {
      for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    }
    PrintRow(headers_, widths);
    std::string sep;
    for (size_t i = 0; i < widths.size(); ++i) {
      sep += std::string(widths[i] + 2, '-');
      if (i + 1 < widths.size()) sep += "+";
    }
    std::printf("%s\n", sep.c_str());
    for (const auto& row : rows_) PrintRow(row, widths);
  }

 private:
  static void PrintRow(const std::vector<std::string>& cells,
                       const std::vector<size_t>& widths) {
    std::string line;
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      line += " " + cell + std::string(widths[i] - cell.size() + 1, ' ');
      if (i + 1 < widths.size()) line += "|";
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double v, int decimals = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

inline void Banner(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

}  // namespace semcor::bench

#endif  // SEMCOR_BENCH_BENCH_UTIL_H_
