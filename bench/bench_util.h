#ifndef SEMCOR_BENCH_BENCH_UTIL_H_
#define SEMCOR_BENCH_BENCH_UTIL_H_

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/str_util.h"

namespace semcor::bench {

/// Minimal fixed-width table printer for the experiment reports (the paper
/// has no plots; we print the rows its claims correspond to).
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
    for (const auto& row : rows_) {
      for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    }
    PrintRow(headers_, widths);
    std::string sep;
    for (size_t i = 0; i < widths.size(); ++i) {
      sep += std::string(widths[i] + 2, '-');
      if (i + 1 < widths.size()) sep += "+";
    }
    std::printf("%s\n", sep.c_str());
    for (const auto& row : rows_) PrintRow(row, widths);
  }

 private:
  static void PrintRow(const std::vector<std::string>& cells,
                       const std::vector<size_t>& widths) {
    std::string line;
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      line += " " + cell + std::string(widths[i] - cell.size() + 1, ' ');
      if (i + 1 < widths.size()) line += "|";
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double v, int decimals = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

inline void Banner(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

/// Machine-readable twin of the printed report: accumulates scalars and
/// tables in insertion order and writes them as `BENCH_<id>.json` in the
/// working directory, so CI and scripts can track bench results across
/// commits without scraping the human tables.
class JsonReport {
 public:
  explicit JsonReport(std::string id) : id_(std::move(id)) {}

  void Scalar(const std::string& key, double v) { Field(KeyName(key), Num(v)); }
  void Scalar(const std::string& key, long v) {
    Field(KeyName(key), std::to_string(v));
  }
  void Scalar(const std::string& key, int v) { Scalar(key, static_cast<long>(v)); }
  void Scalar(const std::string& key, long long v) {
    Field(KeyName(key), std::to_string(v));
  }
  void Scalar(const std::string& key, unsigned long v) {
    Field(KeyName(key), std::to_string(v));
  }
  void Scalar(const std::string& key, const std::string& v) {
    Field(KeyName(key), Quote(v));
  }
  void Scalar(const std::string& key, const char* v) {
    Field(KeyName(key), Quote(v));
  }

  /// Serializes a table as an array of objects keyed by the sanitized
  /// column headers; cells whose printed form is already a valid JSON
  /// number are emitted unquoted.
  void AddTable(const std::string& key, const Table& table) {
    std::vector<std::string> keys;
    keys.reserve(table.headers().size());
    for (const std::string& h : table.headers()) keys.push_back(KeyName(h));
    std::string out = "[";
    bool first = true;
    for (const auto& row : table.rows()) {
      out += first ? "\n    {" : ",\n    {";
      first = false;
      for (size_t i = 0; i < keys.size(); ++i) {
        const std::string& cell = i < row.size() ? row[i] : kEmpty();
        if (i > 0) out += ", ";
        out += Quote(keys[i]) + ": " + Cell(cell);
      }
      out += "}";
    }
    out += first ? "]" : "\n  ]";
    Field(KeyName(key), std::move(out));
  }

  std::string Render() const {
    std::string out = "{\n  \"bench\": " + Quote(id_);
    for (const auto& [key, value] : fields_) {
      out += ",\n  " + Quote(key) + ": " + value;
    }
    out += "\n}\n";
    return out;
  }

  /// Writes `BENCH_<id>.json`; false (plus a note on stderr) on I/O error.
  bool Write() const {
    const std::string path = "BENCH_" + id_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "[bench] cannot write %s\n", path.c_str());
      return false;
    }
    const std::string body = Render();
    const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
    std::fclose(f);
    if (ok) std::printf("\n[bench] wrote %s\n", path.c_str());
    return ok;
  }

  /// "p50 (us)" -> "p50_us": lowercased alphanumerics; each run of other
  /// characters collapses to a single underscore, none leading or trailing.
  static std::string KeyName(const std::string& header) {
    std::string out;
    bool sep = false;
    for (char c : header) {
      if (std::isalnum(static_cast<unsigned char>(c))) {
        if (sep && !out.empty()) out += '_';
        sep = false;
        out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      } else {
        sep = true;
      }
    }
    return out.empty() ? std::string("col") : out;
  }

 private:
  static const std::string& kEmpty() {
    static const std::string empty;
    return empty;
  }

  /// Delegates to the shared, unit-tested escaper in common/str_util so a
  /// hostile header or cell (quotes, backslashes, control bytes) can never
  /// corrupt the report.
  static std::string Quote(const std::string& s) { return JsonQuote(s); }

  static std::string Num(double v) {
    if (!std::isfinite(v)) return Quote(v != v ? "nan" : "inf");
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
  }

  static std::string Cell(const std::string& cell) {
    // Accept only the characters a decimal/scientific literal can contain
    // before trusting strtod: hex ("0x10") and partial parses must stay
    // quoted, or the output would not be valid JSON.
    if (!cell.empty() &&
        (std::isdigit(static_cast<unsigned char>(cell[0])) || cell[0] == '-') &&
        cell.find_first_not_of("0123456789+-.eE") == std::string::npos) {
      char* end = nullptr;
      const double v = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str() + cell.size() && std::isfinite(v)) return cell;
    }
    return Quote(cell);
  }

  void Field(const std::string& key, std::string value) {
    for (auto& [k, v] : fields_) {
      if (k == key) {
        v = std::move(value);
        return;
      }
    }
    fields_.emplace_back(key, std::move(value));
  }

  std::string id_;
  /// (key, rendered JSON value), insertion-ordered; duplicate keys overwrite.
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace semcor::bench

#endif  // SEMCOR_BENCH_BENCH_UTIL_H_
