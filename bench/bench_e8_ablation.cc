// E8 — ablation of the interference checker's proof strategies (the design
// choices DESIGN.md calls out). Each configuration is sound: removing a
// strategy can only push recommendations UP (kNoInterference degrades to
// kUnknown, which the engines treat as interference). The table shows which
// strategy earns which paper verdict, plus analysis wall time.

#include <chrono>

#include "bench/bench_util.h"
#include "sem/check/advisor.h"
#include "workload/workload.h"

namespace semcor {
namespace {

struct Config {
  const char* label;
  CheckOptions options;
};

std::vector<Config> Configs() {
  std::vector<Config> out;
  out.push_back({"full checker", CheckOptions()});
  {
    CheckOptions c;
    c.use_pathwise = false;
    out.push_back({"no path-wise wp", c});
  }
  {
    CheckOptions c;
    c.use_stepwise = false;
    out.push_back({"no step-wise fallback", c});
  }
  {
    CheckOptions c;
    c.decide.disable_subsumption = true;
    out.push_back({"no quantifier subsumption", c});
  }
  {
    CheckOptions c;
    c.use_refutation = false;
    out.push_back({"no concrete refutation", c});
  }
  return out;
}

void Ablate(const Workload& w, const std::string& json_key,
            bench::JsonReport* json) {
  bench::Banner(StrCat("application: ", w.app.name));
  std::vector<std::string> headers = {"configuration"};
  for (const TransactionType& t : w.app.types) headers.push_back(t.name);
  headers.push_back("ms");
  bench::Table table(headers);
  for (const Config& config : Configs()) {
    AdvisorOptions options;
    options.check = config.options;
    const auto t0 = std::chrono::steady_clock::now();
    LevelAdvisor advisor(w.app, options);
    std::vector<std::string> row = {config.label};
    for (const TransactionType& t : w.app.types) {
      LevelAdvice advice = advisor.Advise(t.name);
      const bool matches_paper =
          w.paper_levels.count(t.name) &&
          w.paper_levels.at(t.name) == advice.recommended;
      row.push_back(StrCat(IsoLevelName(advice.recommended),
                           matches_paper ? "" : " (*)"));
    }
    const auto t1 = std::chrono::steady_clock::now();
    row.push_back(bench::Fmt(
        std::chrono::duration<double, std::milli>(t1 - t0).count(), 0));
    table.AddRow(std::move(row));
  }
  table.Print();
  json->AddTable(json_key, table);
}

}  // namespace
}  // namespace semcor

int main() {
  using namespace semcor;
  bench::Banner(
      "E8: checker-strategy ablation ((*) = deviates from the paper level; "
      "deviations are always upward, never unsound)");
  bench::JsonReport json("E8");
  Ablate(MakePayrollWorkload(), "payroll", &json);
  Ablate(MakeBankingWorkload(), "banking", &json);
  Ablate(MakeOrdersWorkload(true), "orders_1day", &json);
  json.Write();
  return 0;
}
