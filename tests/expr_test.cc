#include <gtest/gtest.h>

#include "sem/expr/eval.h"
#include "sem/expr/expr.h"
#include "sem/expr/simplify.h"
#include "sem/expr/subst.h"

namespace semcor {
namespace {

TEST(ExprTest, LiteralsAndToString) {
  EXPECT_EQ(ToString(Lit(int64_t{42})), "42");
  EXPECT_EQ(ToString(Lit(true)), "true");
  EXPECT_EQ(ToString(Lit(std::string("x"))), "\"x\"");
  EXPECT_EQ(ToString(Add(DbVar("x"), Lit(int64_t{1}))), "(x + 1)");
}

TEST(ExprTest, StructuralEquality) {
  Expr a = Add(DbVar("x"), Local("y"));
  Expr b = Add(DbVar("x"), Local("y"));
  Expr c = Add(DbVar("x"), Logical("y"));
  EXPECT_TRUE(ExprEquals(a, b));
  EXPECT_FALSE(ExprEquals(a, c));
}

TEST(ExprTest, EqualityDistinguishesTableAtoms) {
  Expr a = Count("T", Eq(Attr("k"), Lit(int64_t{1})));
  Expr b = Count("T", Eq(Attr("k"), Lit(int64_t{1})));
  Expr c = Count("U", Eq(Attr("k"), Lit(int64_t{1})));
  EXPECT_TRUE(ExprEquals(a, b));
  EXPECT_FALSE(ExprEquals(a, c));
}

TEST(ExprTest, FreeVarsCollectsAllKinds) {
  Expr e = And(Eq(DbVar("x"), Local("y")),
               Gt(Logical("z"), Count("T", Eq(Attr("a"), Local("w")))));
  FreeVars fv = CollectFreeVars(e);
  EXPECT_TRUE(fv.MentionsDbItem("x"));
  EXPECT_EQ(fv.locals.count("y"), 1u);
  EXPECT_EQ(fv.locals.count("w"), 1u);
  EXPECT_EQ(fv.logicals.count("z"), 1u);
  EXPECT_TRUE(fv.MentionsTable("T"));
}

TEST(ExprTest, IsLocalOnly) {
  EXPECT_TRUE(IsLocalOnly(Eq(Local("a"), Logical("b"))));
  EXPECT_FALSE(IsLocalOnly(Eq(Local("a"), DbVar("x"))));
  EXPECT_FALSE(IsLocalOnly(Exists("T", True())));
}

TEST(ExprTest, CollectTableAtoms) {
  Expr e = And(Gt(Count("T", True()), Lit(int64_t{0})),
               Exists("U", Eq(Attr("a"), Lit(int64_t{1}))));
  std::vector<Expr> atoms = CollectTableAtoms(e);
  ASSERT_EQ(atoms.size(), 2u);
  EXPECT_EQ(atoms[0]->op, Op::kCount);
  EXPECT_EQ(atoms[1]->op, Op::kExists);
}

// ---- evaluation ----

TEST(EvalTest, Arithmetic) {
  MapEvalContext ctx;
  ctx.SetDb("x", Value::Int(7));
  Result<Value> v =
      Eval(Add(Mul(DbVar("x"), Lit(int64_t{3})), Lit(int64_t{1})), ctx);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().AsInt(), 22);
}

TEST(EvalTest, DivisionByZeroFails) {
  MapEvalContext ctx;
  Result<Value> v = Eval(Div(Lit(int64_t{1}), Lit(int64_t{0})), ctx);
  EXPECT_FALSE(v.ok());
}

TEST(EvalTest, ShortCircuitAvoidsErrors) {
  MapEvalContext ctx;
  // false && <unbound var> must evaluate to false, not error.
  Result<bool> v =
      EvalBool(And(Lit(false), Eq(DbVar("missing"), Lit(int64_t{0}))), ctx);
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v.value());
  Result<bool> w =
      EvalBool(Or(Lit(true), Eq(DbVar("missing"), Lit(int64_t{0}))), ctx);
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE(w.value());
}

TEST(EvalTest, UnboundVariableIsNotFound) {
  MapEvalContext ctx;
  Result<Value> v = Eval(DbVar("nope"), ctx);
  EXPECT_EQ(v.status().code(), Code::kNotFound);
}

TEST(EvalTest, ComparisonsOnStrings) {
  MapEvalContext ctx;
  ctx.SetLocal("s", Value::Str("b"));
  Result<bool> v = EvalBool(Lt(Local("s"), Lit(std::string("c"))), ctx);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v.value());
  // Ordering an int against a string is a type error.
  Result<bool> w = EvalBool(Lt(Local("s"), Lit(int64_t{0})), ctx);
  EXPECT_FALSE(w.ok());
}

TEST(EvalTest, MixedTypeEqualityIsFalseNotError) {
  MapEvalContext ctx;
  Result<bool> v = EvalBool(Eq(Lit(std::string("a")), Lit(int64_t{1})), ctx);
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v.value());
}

class AggregateEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ctx_.AddTuple("T", {{"k", Value::Int(1)}, {"v", Value::Int(10)}});
    ctx_.AddTuple("T", {{"k", Value::Int(2)}, {"v", Value::Int(20)}});
    ctx_.AddTuple("T", {{"k", Value::Int(1)}, {"v", Value::Int(5)}});
  }
  MapEvalContext ctx_;
};

TEST_F(AggregateEvalTest, Count) {
  Result<Value> v = Eval(Count("T", Eq(Attr("k"), Lit(int64_t{1}))), ctx_);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().AsInt(), 2);
}

TEST_F(AggregateEvalTest, Sum) {
  Result<Value> v = Eval(SumOf("T", "v", Eq(Attr("k"), Lit(int64_t{1}))), ctx_);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().AsInt(), 15);
}

TEST_F(AggregateEvalTest, MaxWithDefault) {
  Result<Value> v = Eval(MaxOf("T", "v", True(), -1), ctx_);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().AsInt(), 20);
  Result<Value> empty =
      Eval(MaxOf("T", "v", Eq(Attr("k"), Lit(int64_t{9})), -1), ctx_);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty.value().AsInt(), -1);
}

TEST_F(AggregateEvalTest, ExistsAndForall) {
  Result<Value> e = Eval(Exists("T", Gt(Attr("v"), Lit(int64_t{15}))), ctx_);
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(e.value().AsBool());
  Result<Value> f = Eval(
      Forall("T", Eq(Attr("k"), Lit(int64_t{1})), Le(Attr("v"), Lit(int64_t{10}))),
      ctx_);
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(f.value().AsBool());
  Result<Value> g =
      Eval(Forall("T", True(), Le(Attr("v"), Lit(int64_t{10}))), ctx_);
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(g.value().AsBool());
}

TEST_F(AggregateEvalTest, OuterVariablesVisibleInTuplePredicates) {
  ctx_.SetLocal("want", Value::Int(2));
  Result<Value> v = Eval(Count("T", Eq(Attr("k"), Local("want"))), ctx_);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().AsInt(), 1);
}

TEST(EvalTest, MissingTableIsNotFound) {
  MapEvalContext ctx;
  Result<Value> v = Eval(Count("nope", True()), ctx);
  EXPECT_EQ(v.status().code(), Code::kNotFound);
}

// ---- substitution ----

TEST(SubstTest, SubstituteDbVar) {
  Expr e = Ge(Add(DbVar("x"), DbVar("y")), Lit(int64_t{0}));
  Expr out = Substitute(e, {VarKind::kDb, "x"}, Lit(int64_t{5}));
  EXPECT_EQ(ToString(out), "((5 + y) >= 0)");
}

TEST(SubstTest, SimultaneousSwap) {
  Expr e = Sub(Local("a"), Local("b"));
  std::map<VarRef, Expr> m = {{{VarKind::kLocal, "a"}, Local("b")},
                              {{VarKind::kLocal, "b"}, Local("a")}};
  Expr out = SubstituteAll(e, m);
  EXPECT_EQ(ToString(out), "($b - $a)");
}

TEST(SubstTest, DescendsIntoTuplePredicates) {
  Expr e = Count("T", Eq(Attr("k"), Local("x")));
  Expr out = Substitute(e, {VarKind::kLocal, "x"}, Lit(int64_t{3}));
  EXPECT_EQ(ToString(out), "count(T | (.k == 3))");
}

TEST(SubstTest, AttrSubstitutionInstantiatesTuple) {
  Expr pred = And(Eq(Attr("k"), Lit(int64_t{1})), Gt(Attr("v"), Local("w")));
  Tuple t = {{"k", Value::Int(1)}, {"v", Value::Int(9)}};
  Expr inst = InstantiateOnTuple(pred, t);
  MapEvalContext ctx;
  ctx.SetLocal("w", Value::Int(3));
  Result<bool> v = EvalBool(inst, ctx);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v.value());
}

TEST(SubstTest, NoChangePreservesSharing) {
  Expr e = Add(DbVar("x"), Lit(int64_t{1}));
  Expr out = Substitute(e, {VarKind::kDb, "unrelated"}, Lit(int64_t{0}));
  EXPECT_EQ(e.get(), out.get());
}

// ---- simplification ----

TEST(SimplifyTest, ConstantFolding) {
  EXPECT_EQ(ToString(Simplify(Add(Lit(int64_t{2}), Lit(int64_t{3})))), "5");
  EXPECT_EQ(ToString(Simplify(Lt(Lit(int64_t{2}), Lit(int64_t{3})))), "true");
}

TEST(SimplifyTest, Identities) {
  Expr x = DbVar("x");
  EXPECT_TRUE(ExprEquals(Simplify(Add(x, Lit(int64_t{0}))), x));
  EXPECT_TRUE(ExprEquals(Simplify(Mul(x, Lit(int64_t{1}))), x));
  EXPECT_EQ(ToString(Simplify(Mul(x, Lit(int64_t{0})))), "0");
  EXPECT_TRUE(ExprEquals(Simplify(Not(Not(x))), x));
}

TEST(SimplifyTest, ReflexiveComparisons) {
  Expr x = DbVar("x");
  EXPECT_TRUE(IsTrueLiteral(Simplify(Eq(x, x))));
  EXPECT_TRUE(IsTrueLiteral(Simplify(Le(x, x))));
  EXPECT_TRUE(IsFalseLiteral(Simplify(Lt(x, x))));
}

TEST(SimplifyTest, BooleanAbsorption) {
  Expr p = Gt(DbVar("x"), Lit(int64_t{0}));
  EXPECT_TRUE(ExprEquals(Simplify(And(p, True())), p));
  EXPECT_TRUE(IsFalseLiteral(Simplify(And(p, False()))));
  EXPECT_TRUE(IsTrueLiteral(Simplify(Or(p, True()))));
  EXPECT_TRUE(ExprEquals(Simplify(Implies(True(), p)), p));
  EXPECT_TRUE(IsTrueLiteral(Simplify(Implies(p, p))));
}

TEST(SimplifyTest, FlattensAndDeduplicates) {
  Expr p = Gt(DbVar("x"), Lit(int64_t{0}));
  Expr q = Lt(DbVar("y"), Lit(int64_t{5}));
  Expr nested = And(p, And(q, p));
  Expr out = Simplify(nested);
  EXPECT_EQ(Conjuncts(out).size(), 2u);
}

TEST(SimplifyTest, ComplementaryConjunctsAreFalse) {
  Expr p = Exists("T", True());
  EXPECT_TRUE(IsFalseLiteral(Simplify(And(p, Not(p)))));
  EXPECT_TRUE(IsTrueLiteral(Simplify(Or(p, Not(p)))));
}

TEST(SimplifyTest, VacuousQuantifiers) {
  EXPECT_TRUE(IsTrueLiteral(Simplify(Forall("T", False(), Lit(false)))));
  EXPECT_TRUE(IsTrueLiteral(Simplify(Forall("T", True(), True()))));
  EXPECT_TRUE(IsFalseLiteral(Simplify(Exists("T", False()))));
  EXPECT_EQ(ToString(Simplify(Count("T", False()))), "0");
  EXPECT_EQ(ToString(Simplify(MaxOf("T", "v", False(), 7))), "7");
}

TEST(SimplifyTest, Conjuncts) {
  Expr p = Gt(DbVar("x"), Lit(int64_t{0}));
  Expr q = Lt(DbVar("y"), Lit(int64_t{5}));
  std::vector<Expr> cs = Conjuncts(And(p, And(q, True())));
  // True() stays unless simplified; Conjuncts flattens structurally.
  EXPECT_GE(cs.size(), 2u);
}

}  // namespace
}  // namespace semcor
