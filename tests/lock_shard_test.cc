// Concurrency battery for the sharded LockManager.
//
// 1. Differential property test: seeded random request scripts run through
//    the sharded manager (at several shard counts) and the retained
//    single-mutex RefLockManager in deterministic try-lock mode, asserting
//    identical grant/kWouldBlock/kDeadlock outcomes and HeldCount after
//    every operation. Try-lock outcomes are a pure function of per-key
//    state, so sharding must not perturb them — this is the contract the
//    step driver and the schedule explorer replay on.
// 2. Multi-threaded stress: worker threads hammer a small key space with
//    mixed item/row/predicate requests (try-lock and blocking) plus
//    ReleaseAll, then the test asserts the post-storm invariants: no
//    residual holders, deadlocks never exceed blocks, per-shard statistics
//    sum to the totals. ci.sh runs this suite under ASan and TSan.
// 3. Cross-shard deadlock: a wait-for cycle whose two keys live on
//    different shards must still be detected via the global graph.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "lock/lock_manager.h"
#include "lock/ref_lock_manager.h"

namespace semcor {
namespace {

bool IsPow2(size_t n) { return n != 0 && (n & (n - 1)) == 0; }

TEST(LockShardTest, DefaultShardCountIsClampedPowerOfTwo) {
  const size_t n = LockManager::DefaultShardCount();
  EXPECT_TRUE(IsPow2(n)) << n;
  EXPECT_GE(n, LockManager::kMinShards);
  EXPECT_LE(n, LockManager::kMaxShards);
  LockManager lm;
  EXPECT_EQ(lm.shard_count(), n);
  EXPECT_EQ(lm.ShardStats().size(), n);
}

TEST(LockShardTest, ConstructorAndReshardRoundUpToPowerOfTwo) {
  LockManager lm(3);
  EXPECT_EQ(lm.shard_count(), 4u);
  lm.Reshard(1);
  EXPECT_EQ(lm.shard_count(), 1u);
  lm.Reshard(5);
  EXPECT_EQ(lm.shard_count(), 8u);
  ASSERT_TRUE(lm.AcquireItem(1, "x", LockMode::kExclusive, false).ok());
  EXPECT_EQ(lm.HeldCount(1), 1u);
}

TEST(LockShardTest, KeysSpreadAcrossShards) {
  LockManager lm(8);
  std::set<size_t> used;
  for (int i = 0; i < 64; ++i) {
    used.insert(lm.ShardOfItem("item" + std::to_string(i)));
  }
  // With 64 keys over 8 shards a single-bucket hash would be broken.
  EXPECT_GT(used.size(), 1u);
  for (size_t s : used) EXPECT_LT(s, lm.shard_count());
}

TEST(LockShardTest, FaultHookSurvivesResetAndReshard) {
  LockManager lm(4);
  std::atomic<int> consulted{0};
  lm.SetFaultHook([&](TxnId) {
    ++consulted;
    return Status::Ok();
  });
  ASSERT_TRUE(lm.AcquireItem(1, "x", LockMode::kShared, false).ok());
  lm.Reset();
  lm.Reshard(8);
  ASSERT_TRUE(lm.AcquireItem(1, "y", LockMode::kShared, false).ok());
  EXPECT_EQ(consulted.load(), 2);
  // A vetoing hook blocks the grant on whatever shard the key lands on.
  lm.SetFaultHook(
      [](TxnId) { return Status::WouldBlock("injected transient failure"); });
  EXPECT_EQ(lm.AcquireItem(2, "z", LockMode::kExclusive, false).code(),
            Code::kWouldBlock);
  EXPECT_EQ(lm.HeldCount(2), 0u);
  lm.SetFaultHook(nullptr);
  EXPECT_TRUE(lm.AcquireItem(2, "z", LockMode::kExclusive, false).ok());
}

// ---- differential property test vs. the single-mutex reference ----

struct ScriptOp {
  enum Kind {
    kAcquireItem,
    kAcquireRow,
    kAcquirePredicate,
    kPredicateGate,
    kReleaseItem,
    kReleaseRow,
    kReleaseAll,
  };
  Kind kind = kAcquireItem;
  TxnId txn = 1;
  int key = 0;   ///< item index, row id, predicate index, or image value
  int table = 0;
  LockMode mode = LockMode::kShared;
};

constexpr int kTxns = 6;
constexpr int kItems = 8;
constexpr int kRows = 6;
const char* const kTables[] = {"T", "U"};

std::vector<ScriptOp> MakeScript(uint64_t seed, int length) {
  Rng rng(seed);
  std::vector<ScriptOp> script;
  script.reserve(length);
  for (int i = 0; i < length; ++i) {
    ScriptOp op;
    const int kind = static_cast<int>(rng.Uniform(0, 9));
    // Weight acquires over releases so tables stay populated.
    if (kind <= 2) {
      op.kind = ScriptOp::kAcquireItem;
    } else if (kind <= 4) {
      op.kind = ScriptOp::kAcquireRow;
    } else if (kind == 5) {
      op.kind = ScriptOp::kAcquirePredicate;
    } else if (kind == 6) {
      op.kind = ScriptOp::kPredicateGate;
    } else if (kind == 7) {
      op.kind = ScriptOp::kReleaseItem;
    } else if (kind == 8) {
      op.kind = ScriptOp::kReleaseRow;
    } else {
      op.kind = ScriptOp::kReleaseAll;
    }
    op.txn = static_cast<TxnId>(rng.Uniform(1, kTxns));
    op.key = static_cast<int>(rng.Uniform(0, kItems - 1));
    op.table = static_cast<int>(rng.Uniform(0, 1));
    op.mode = rng.Uniform(0, 1) == 0 ? LockMode::kShared : LockMode::kExclusive;
    script.push_back(op);
  }
  return script;
}

/// The four predicates the script draws from: two disjoint equalities, one
/// range overlapping both, and one range disjoint from d==1.
Expr ScriptPredicate(int index) {
  switch (index % 4) {
    case 0:
      return Eq(Attr("d"), Lit(int64_t{1}));
    case 1:
      return Eq(Attr("d"), Lit(int64_t{2}));
    case 2:
      return Gt(Attr("d"), Lit(int64_t{0}));
    default:
      return Gt(Attr("d"), Lit(int64_t{3}));
  }
}

/// Applies one op to a manager; returns the Status code (kOk for releases).
template <typename Manager>
Code ApplyOp(Manager& lm, const ScriptOp& op) {
  const std::string item = "it" + std::to_string(op.key);
  const std::string table = kTables[op.table];
  const RowId row = op.key % kRows;
  switch (op.kind) {
    case ScriptOp::kAcquireItem:
      return lm.AcquireItem(op.txn, item, op.mode, /*wait=*/false).code();
    case ScriptOp::kAcquireRow:
      return lm.AcquireRow(op.txn, table, row, op.mode, /*wait=*/false).code();
    case ScriptOp::kAcquirePredicate:
      return lm
          .AcquirePredicate(op.txn, table, ScriptPredicate(op.key), op.mode,
                            /*wait=*/false)
          .code();
    case ScriptOp::kPredicateGate: {
      Tuple image = {{"d", Value::Int(op.key % 5)}};
      return lm
          .PredicateGate(op.txn, table, {&image}, op.mode, /*wait=*/false)
          .code();
    }
    case ScriptOp::kReleaseItem:
      lm.ReleaseItem(op.txn, item);
      return Code::kOk;
    case ScriptOp::kReleaseRow:
      lm.ReleaseRow(op.txn, table, row);
      return Code::kOk;
    case ScriptOp::kReleaseAll:
      lm.ReleaseAll(op.txn);
      return Code::kOk;
  }
  return Code::kOk;
}

TEST(LockShardTest, DifferentialAgainstSingleMutexReference) {
  for (const uint64_t seed : {11u, 22u, 33u, 44u, 55u}) {
    const std::vector<ScriptOp> script = MakeScript(seed, 1500);
    for (const size_t shards : {1u, 2u, 8u}) {
      LockManager sharded(shards);
      RefLockManager reference;
      for (size_t i = 0; i < script.size(); ++i) {
        const ScriptOp& op = script[i];
        const Code got = ApplyOp(sharded, op);
        const Code want = ApplyOp(reference, op);
        ASSERT_EQ(got, want) << "seed " << seed << " shards " << shards
                             << " op " << i;
        for (TxnId t = 1; t <= kTxns; ++t) {
          ASSERT_EQ(sharded.HeldCount(t), reference.HeldCount(t))
              << "seed " << seed << " shards " << shards << " op " << i
              << " txn " << t;
        }
      }
    }
  }
}

TEST(LockShardTest, GrantCountsIndependentOfShardCount) {
  const std::vector<ScriptOp> script = MakeScript(7, 1200);
  long grants1 = -1;
  for (const size_t shards : {1u, 4u, 16u}) {
    LockManager lm(shards);
    for (const ScriptOp& op : script) ApplyOp(lm, op);
    const LockManager::Stats total = lm.stats();
    if (grants1 < 0) grants1 = total.grants;
    EXPECT_EQ(total.grants, grants1) << shards;
    // Try-lock scripts never wait.
    EXPECT_EQ(total.blocks, 0) << shards;
    EXPECT_EQ(total.contention_waits, 0) << shards;
  }
}

TEST(LockShardTest, ShardStatsSumToTotals) {
  LockManager lm(8);
  const std::vector<ScriptOp> script = MakeScript(99, 800);
  for (const ScriptOp& op : script) ApplyOp(lm, op);
  LockManager::Stats summed;
  for (const LockManager::Stats& s : lm.ShardStats()) summed.Add(s);
  const LockManager::Stats total = lm.stats();
  EXPECT_EQ(summed.grants, total.grants);
  EXPECT_EQ(summed.blocks, total.blocks);
  EXPECT_EQ(summed.deadlocks, total.deadlocks);
  EXPECT_EQ(summed.contention_waits, total.contention_waits);
  EXPECT_GT(total.grants, 0);
}

// ---- cross-shard deadlock detection ----

TEST(LockShardTest, CrossShardDeadlockDetected) {
  LockManager lm(8);
  // Find two items on different shards so the wait-for cycle spans them.
  std::string a = "a0", b;
  for (int i = 0; i < 256 && b.empty(); ++i) {
    std::string candidate = "b" + std::to_string(i);
    if (lm.ShardOfItem(candidate) != lm.ShardOfItem(a)) b = candidate;
  }
  ASSERT_FALSE(b.empty());
  ASSERT_TRUE(lm.AcquireItem(1, a, LockMode::kExclusive, false).ok());
  ASSERT_TRUE(lm.AcquireItem(2, b, LockMode::kExclusive, false).ok());
  std::thread t1([&] {
    // T1 waits for b (held by T2) on b's shard; T2 then requests a on a's
    // shard, closing a cycle the global graph must see.
    Status s = lm.AcquireItem(1, b, LockMode::kExclusive, true);
    EXPECT_TRUE(s.ok() || s.code() == Code::kDeadlock);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Status s2 = lm.AcquireItem(2, a, LockMode::kExclusive, true);
  EXPECT_EQ(s2.code(), Code::kDeadlock);
  lm.ReleaseAll(2);  // victim aborts
  t1.join();
  lm.ReleaseAll(1);
  EXPECT_GE(lm.stats().deadlocks, 1);
  EXPECT_GE(lm.stats().blocks, 1);
}

// ---- multi-threaded stress ----

TEST(LockShardStressTest, MixedStormLeavesNoResidue) {
  LockManager lm;  // default shard count
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  constexpr int kRounds = 60;
#else
  constexpr int kRounds = 250;
#endif
  constexpr int kThreads = 8;
  constexpr int kKeys = 16;
  std::atomic<long> observed_deadlocks{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(0x5eed + t);
      const TxnId txn = t + 1;
      for (int round = 0; round < kRounds; ++round) {
        const int ops = 1 + static_cast<int>(rng.Uniform(0, 5));
        for (int i = 0; i < ops; ++i) {
          const int kind = static_cast<int>(rng.Uniform(0, 9));
          const LockMode mode =
              rng.Uniform(0, 2) == 0 ? LockMode::kExclusive : LockMode::kShared;
          const std::string key = "k" + std::to_string(rng.Uniform(0, kKeys - 1));
          Status s = Status::Ok();
          if (kind <= 4) {
            // Mostly try-locks: the deterministic drivers' bread and butter.
            s = lm.AcquireItem(txn, key, mode, /*wait=*/false);
          } else if (kind <= 6) {
            // Blocking acquires exercise queues, cv waits, and the global
            // wait-for graph (cycles resolve as kDeadlock).
            s = lm.AcquireItem(txn, key, mode, /*wait=*/true);
          } else if (kind == 7) {
            s = lm.AcquireRow(txn, "S", rng.Uniform(0, kKeys - 1), mode,
                              /*wait=*/false);
          } else {
            Tuple image = {{"d", Value::Int(rng.Uniform(0, 4))}};
            s = lm.PredicateGate(txn, "S", {&image}, mode, /*wait=*/false);
          }
          if (s.code() == Code::kDeadlock) {
            ++observed_deadlocks;
            break;  // abort: drop everything below
          }
        }
        lm.ReleaseAll(txn);
      }
      lm.ReleaseAll(txn);
    });
  }
  for (std::thread& w : workers) w.join();

  // Post-storm invariants.
  for (int t = 1; t <= kThreads; ++t) {
    EXPECT_EQ(lm.HeldCount(t), 0u) << "residual locks for txn " << t;
  }
  const LockManager::Stats total = lm.stats();
  EXPECT_GT(total.grants, 0);
  EXPECT_GE(total.blocks, total.deadlocks);
  EXPECT_GE(total.deadlocks, observed_deadlocks.load());
  LockManager::Stats summed;
  for (const LockManager::Stats& s : lm.ShardStats()) summed.Add(s);
  EXPECT_EQ(summed.grants, total.grants);
  EXPECT_EQ(summed.blocks, total.blocks);
  EXPECT_EQ(summed.deadlocks, total.deadlocks);
  EXPECT_EQ(summed.contention_waits, total.contention_waits);
  // The storm is over: a fresh transaction can take any lock immediately.
  for (int k = 0; k < kKeys; ++k) {
    EXPECT_TRUE(lm.AcquireItem(99, "k" + std::to_string(k),
                               LockMode::kExclusive, false)
                    .ok());
  }
  lm.ReleaseAll(99);
}

TEST(LockShardStressTest, ConcurrentDisjointKeysNeverConflict) {
  // Each thread owns a private key partition: with no key overlap there
  // must be zero blocks, zero deadlocks, and every acquire must succeed.
  LockManager lm(8);
  constexpr int kThreads = 4;
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  constexpr int kIters = 400;
#else
  constexpr int kIters = 2000;
#endif
  std::atomic<long> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      const TxnId txn = t + 1;
      for (int i = 0; i < kIters; ++i) {
        const std::string key = "p" + std::to_string(t) + "_" +
                                std::to_string(i % 8);
        if (!lm.AcquireItem(txn, key, LockMode::kExclusive, true).ok()) {
          ++failures;
        }
        lm.ReleaseItem(txn, key);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  const LockManager::Stats total = lm.stats();
  EXPECT_EQ(total.blocks, 0);
  EXPECT_EQ(total.deadlocks, 0);
  EXPECT_EQ(total.grants, static_cast<long>(kThreads) * kIters);
}

}  // namespace
}  // namespace semcor
