// Lock-manager fairness and txn-visibility store APIs: regression coverage
// for the convoy/starvation pathologies found while tuning E3.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "lock/lock_manager.h"
#include "storage/store.h"

namespace semcor {
namespace {

TEST(FairnessTest, ReaderQueuesBehindEarlierWriter) {
  // T1 holds X; T2 (writer) queues; T3's S request must not jump the queue.
  LockManager lm;
  ASSERT_TRUE(lm.AcquireItem(1, "k", LockMode::kExclusive, false).ok());
  std::atomic<bool> t2_granted{false}, t3_granted{false};
  std::thread t2([&] {
    EXPECT_TRUE(lm.AcquireItem(2, "k", LockMode::kExclusive, true).ok());
    t2_granted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  std::thread t3([&] {
    EXPECT_TRUE(lm.AcquireItem(3, "k", LockMode::kShared, true).ok());
    t3_granted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(t2_granted.load());
  EXPECT_FALSE(t3_granted.load());
  lm.ReleaseAll(1);
  t2.join();
  EXPECT_TRUE(t2_granted.load());
  // T3 is still behind T2's X lock.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(t3_granted.load());
  lm.ReleaseAll(2);
  t3.join();
  EXPECT_TRUE(t3_granted.load());
  lm.ReleaseAll(3);
}

TEST(FairnessTest, QueuedSharedRequestsGrantTogether) {
  LockManager lm;
  ASSERT_TRUE(lm.AcquireItem(1, "k", LockMode::kExclusive, false).ok());
  std::atomic<int> granted{0};
  std::vector<std::thread> readers;
  for (TxnId t = 2; t <= 4; ++t) {
    readers.emplace_back([&, t] {
      EXPECT_TRUE(lm.AcquireItem(t, "k", LockMode::kShared, true).ok());
      ++granted;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(granted.load(), 0);
  lm.ReleaseAll(1);
  for (std::thread& r : readers) r.join();
  EXPECT_EQ(granted.load(), 3);
}

TEST(FairnessTest, NonBlockingRequestsNeverCutTheQueue) {
  LockManager lm;
  ASSERT_TRUE(lm.AcquireItem(1, "k", LockMode::kShared, false).ok());
  std::thread upgrader([&] {
    // Blocks: T1 also holds S... use a separate writer txn.
    EXPECT_TRUE(lm.AcquireItem(2, "k", LockMode::kExclusive, true).ok());
    lm.ReleaseAll(2);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // A try-lock S from T3 while T2 waits for X must report WouldBlock.
  EXPECT_EQ(lm.AcquireItem(3, "k", LockMode::kShared, false).code(),
            Code::kWouldBlock);
  lm.ReleaseAll(1);
  upgrader.join();
}

TEST(StoreVisibilityTest, ScanWithPendingReportsOwners) {
  Store store;
  ASSERT_TRUE(store
                  .CreateTable("T", Schema({{"k", Value::Type::kInt},
                                            {"v", Value::Type::kInt}}))
                  .ok());
  Result<RowId> committed =
      store.LoadRow("T", {{"k", Value::Int(1)}, {"v", Value::Int(1)}});
  ASSERT_TRUE(committed.ok());
  Result<RowId> dirty = store.InsertRowUncommitted(
      9, "T", {{"k", Value::Int(2)}, {"v", Value::Int(2)}});
  ASSERT_TRUE(dirty.ok());
  std::map<int64_t, std::optional<TxnId>> seen;
  ASSERT_TRUE(store
                  .ScanWithPending("T", [&](RowId, const Tuple& t,
                                            std::optional<TxnId> owner) {
                    seen[t.at("k").AsInt()] = owner;
                  })
                  .ok());
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_FALSE(seen[1].has_value());
  EXPECT_EQ(seen[2], std::optional<TxnId>(9));
}

TEST(StoreVisibilityTest, ScanWithPendingShowsCommittedImageOfPendingDelete) {
  Store store;
  ASSERT_TRUE(store
                  .CreateTable("T", Schema({{"k", Value::Type::kInt},
                                            {"v", Value::Type::kInt}}))
                  .ok());
  Result<RowId> row =
      store.LoadRow("T", {{"k", Value::Int(1)}, {"v", Value::Int(1)}});
  ASSERT_TRUE(row.ok());
  ASSERT_TRUE(store.WriteRowUncommitted(5, "T", row.value(), std::nullopt).ok());
  int visits = 0;
  std::optional<TxnId> owner;
  ASSERT_TRUE(store
                  .ScanWithPending("T", [&](RowId, const Tuple&,
                                            std::optional<TxnId> o) {
                    ++visits;
                    owner = o;
                  })
                  .ok());
  // The committed image is surfaced with its pending deleter so readers
  // know to wait (plain kLatest scans would hide the row entirely).
  EXPECT_EQ(visits, 1);
  EXPECT_EQ(owner, std::optional<TxnId>(5));
}

TEST(StoreVisibilityTest, ReadItemForTxnPrefersOwnImage) {
  Store store;
  ASSERT_TRUE(store.CreateItem("x", Value::Int(1)).ok());
  ASSERT_TRUE(store.WriteItemUncommitted(7, "x", Value::Int(9)).ok());
  EXPECT_EQ(store.ReadItemForTxn("x", 7).value().AsInt(), 9);   // own image
  EXPECT_EQ(store.ReadItemForTxn("x", 8).value().AsInt(), 1);   // committed
}

}  // namespace
}  // namespace semcor
