// Conformance-spec suite: the parser's hostile-input behavior, the SQL
// lowering's error surface, the runner's determinism, and the golden
// harness that executes every spec in tests/specs at all seven isolation
// levels and diffs the outcome rows against the checked-in goldens.
//
// Regenerate goldens with `spec_conformance_test --update-golden` (or
// `semcor_spec --update-golden tests/specs/*.spec`).

#include <dirent.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "spec/compile.h"
#include "spec/runner.h"
#include "spec/spec.h"
#include "txn/isolation.h"

namespace semcor::spec {
namespace {

bool g_update_golden = false;

#ifndef SEMCOR_SPECS_DIR
#error "SEMCOR_SPECS_DIR must point at tests/specs"
#endif

std::vector<std::string> ListSpecs() {
  std::vector<std::string> names;
  DIR* dir = opendir(SEMCOR_SPECS_DIR);
  if (dir == nullptr) return names;
  while (dirent* e = readdir(dir)) {
    const std::string name = e->d_name;
    if (name.size() > 5 && name.substr(name.size() - 5) == ".spec") {
      names.push_back(name);
    }
  }
  closedir(dir);
  std::sort(names.begin(), names.end());
  return names;
}

Status ParseError(const std::string& text) {
  Result<IsolationSpec> r = ParseSpec(text, "spec.spec");
  if (r.ok()) return Status::Ok();
  return r.status();
}

Status CompileError(const std::string& text) {
  Result<IsolationSpec> parsed = ParseSpec(text, "spec.spec");
  if (!parsed.ok()) return parsed.status();
  Result<CompiledSpec> compiled = CompileSpec(parsed.value());
  if (compiled.ok()) return Status::Ok();
  return compiled.status();
}

/// Every rejection must carry a line anchor so a spec author can find the
/// offending construct: the parser emits "path:line:", the compiler (which
/// works on the parsed struct, not the file) "<spec> ... line N:" or
/// "<spec>:N:".
bool HasLineAnchor(const std::string& msg) {
  for (size_t i = 0; i + 1 < msg.size(); ++i) {
    if (msg[i] == ':' && isdigit(static_cast<unsigned char>(msg[i + 1]))) {
      return true;
    }
    if (msg.compare(i, 5, "line ") == 0 && i + 5 < msg.size() &&
        isdigit(static_cast<unsigned char>(msg[i + 5]))) {
      return true;
    }
  }
  return false;
}

void ExpectLineNumberedError(const Status& s, const std::string& fragment) {
  ASSERT_FALSE(s.ok()) << "expected rejection mentioning: " << fragment;
  EXPECT_TRUE(HasLineAnchor(s.message())) << s.message();
  EXPECT_NE(s.message().find(fragment), std::string::npos) << s.message();
}

constexpr const char* kMinimalSpec = R"(
setup { create table t (a int); insert into t values (1); }
session "s1"
step "r1" { select a from t; }
step "c1" { COMMIT; }
session "s2"
step "w2" { update t set a = 2; }
step "c2" { COMMIT; }
)";

TEST(SpecParser, ParsesMinimalSpec) {
  Result<IsolationSpec> r = ParseSpec(kMinimalSpec, "spec.spec");
  ASSERT_TRUE(r.ok()) << r.status().message();
  const IsolationSpec& s = r.value();
  EXPECT_EQ(s.sessions.size(), 2u);
  EXPECT_EQ(s.sessions[0].name, "s1");
  EXPECT_EQ(s.sessions[0].steps.size(), 2u);
  EXPECT_EQ(s.TotalSteps(), 4);
  EXPECT_TRUE(s.permutations.empty());
  auto [sess, idx] = s.FindStep("w2");
  EXPECT_EQ(sess, 1);
  EXPECT_EQ(idx, 0);
}

TEST(SpecParser, TruncatedBlocksAreLineNumberedErrors) {
  ExpectLineNumberedError(ParseError("setup { create table t (a int);"),
                          "unterminated");
  ExpectLineNumberedError(
      ParseError("setup { x }\nsession \"s1\"\nstep \"a\" { select"),
      "unterminated");
  ExpectLineNumberedError(ParseError("session \"s1"), "unterminated");
  ExpectLineNumberedError(ParseError("session"), "expected");
  ExpectLineNumberedError(ParseError("step \"a\" { select 1; }"),
                          "outside");
}

TEST(SpecParser, DuplicateNamesRejected) {
  ExpectLineNumberedError(
      ParseError("session \"s1\"\nstep \"a\" { select 1; }\n"
                 "session \"s1\"\nstep \"b\" { select 1; }"),
      "duplicate session");
  // Step names are global: permutations reference them unqualified.
  ExpectLineNumberedError(
      ParseError("session \"s1\"\nstep \"a\" { select 1; }\n"
                 "session \"s2\"\nstep \"a\" { select 1; }"),
      "duplicate step");
}

TEST(SpecParser, UnknownPermutationStepRejected) {
  ExpectLineNumberedError(
      ParseError(std::string(kMinimalSpec) +
                 "permutation \"r1\" \"nope\" \"c1\" \"w2\" \"c2\"\n"),
      "nope");
}

TEST(SpecParser, EmptyPermutationRejected) {
  ExpectLineNumberedError(
      ParseError(std::string(kMinimalSpec) + "permutation\n"),
      "permutation");
}

TEST(SpecParser, OversizedPermutationRejected) {
  std::string text = kMinimalSpec;
  text += "permutation";
  for (int i = 0; i < kMaxPermutationSteps + 1; ++i) text += " \"r1\"";
  text += "\n";
  ExpectLineNumberedError(ParseError(text), "permutation");
}

TEST(SpecParser, SessionCapEnforced) {
  std::string text = "setup { create table t (a int); }\n";
  for (int i = 0; i <= kMaxSessions; ++i) {
    text += "session \"s" + std::to_string(i) + "\"\n";
    text += "step \"p" + std::to_string(i) + "\" { select a from t; }\n";
  }
  ExpectLineNumberedError(ParseError(text), "sessions");
}

TEST(SpecParser, SessionSetupMustPrecedeSteps) {
  ExpectLineNumberedError(
      ParseError("session \"s1\"\nstep \"a\" { select 1; }\n"
                 "setup { BEGIN; }"),
      "setup");
}

TEST(SpecParser, StructurallyEmptySpecsRejected) {
  ExpectLineNumberedError(ParseError("setup { create table t (a int); }"),
                          "session");
  ExpectLineNumberedError(ParseError("session \"s1\""), "step");
  ExpectLineNumberedError(ParseError("frobnicate \"x\""), "frobnicate");
}

TEST(SpecCompile, RejectsSqlOutsideTheSubset) {
  ExpectLineNumberedError(
      CompileError("setup { create table t (a int); }\n"
                   "session \"s1\"\nstep \"a\" { truncate t; }"),
      "unsupported");
  ExpectLineNumberedError(
      CompileError("setup { create table t (a frobtype); }\n"
                   "session \"s1\"\nstep \"a\" { select a from t; }"),
      "column type");
  ExpectLineNumberedError(
      CompileError("setup { create table t (a int); }\n"
                   "session \"s1\"\nstep \"a\" { select a from missing; }"),
      "missing");
  ExpectLineNumberedError(
      CompileError("setup { insert into nowhere values (1); }\n"
                   "session \"s1\"\nstep \"a\" { select 1; }"),
      "nowhere");
}

TEST(SpecCompile, CommitMustEndItsStep) {
  ExpectLineNumberedError(
      CompileError("setup { create table t (a int); }\n"
                   "session \"s1\"\n"
                   "step \"a\" { COMMIT; select a from t; }"),
      "COMMIT");
  ExpectLineNumberedError(
      CompileError("setup { create table t (a int); }\n"
                   "session \"s1\"\n"
                   "step \"a\" { COMMIT; }\n"
                   "step \"b\" { select a from t; }"),
      "COMMIT/ROLLBACK");
}

TEST(SpecCompile, ExplicitPermutationsMustBeCompleteAndInOrder) {
  ExpectLineNumberedError(
      CompileError(std::string(kMinimalSpec) +
                   "permutation \"r1\" \"c1\"\n"),
      "partial");
  ExpectLineNumberedError(
      CompileError(std::string(kMinimalSpec) +
                   "permutation \"c1\" \"r1\" \"w2\" \"c2\"\n"),
      "order");
}

TEST(SpecCompile, GeneratedInterleavingCapEnforced) {
  // Four sessions of six data steps each: 24!/(6!)^4 interleavings, far
  // beyond the cap; the spec must list explicit permutations instead.
  std::string text = "setup { create table t (a int); }\n";
  for (int s = 0; s < 4; ++s) {
    text += "session \"s" + std::to_string(s) + "\"\n";
    for (int i = 0; i < 6; ++i) {
      text += "step \"p" + std::to_string(s) + "_" + std::to_string(i) +
              "\" { select a from t; }\n";
    }
  }
  Status s = CompileError(text);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("permutation"), std::string::npos)
      << s.message();
}

TEST(SpecCompile, LowersMinimalSpec) {
  Result<IsolationSpec> parsed = ParseSpec(kMinimalSpec, "spec.spec");
  ASSERT_TRUE(parsed.ok());
  Result<CompiledSpec> compiled = CompileSpec(parsed.value());
  ASSERT_TRUE(compiled.ok()) << compiled.status().message();
  const CompiledSpec& c = compiled.value();
  ASSERT_EQ(c.programs.size(), 2u);
  ASSERT_EQ(c.steps.size(), 2u);
  EXPECT_TRUE(c.steps[0][1].commit_after);
  EXPECT_TRUE(c.steps[1][1].commit_after);
  ASSERT_EQ(c.setup.tables.size(), 1u);
  ASSERT_EQ(c.setup.rows.size(), 1u);
  // 4 steps, 2 per session: C(4,2) = 6 interleavings.
  EXPECT_EQ(c.permutations.size(), 6u);
}

TEST(Levels, AllLevelsCoversEveryRung) {
  // Every for-over-levels consumer (check ladder, report, lint, wire BEGIN
  // negotiation, per-level bench counters, the spec runner) iterates
  // AllLevels() or sizes arrays with kIsoLevelCount; this pins the two in
  // sync and the wire indices stable.
  ASSERT_EQ(AllLevels().size(), static_cast<size_t>(kIsoLevelCount));
  EXPECT_EQ(kIsoLevelCount, 7);
  EXPECT_EQ(static_cast<int>(IsoLevel::kSsi), 6);  // wire index
  std::map<std::string, IsoLevel> seen;
  for (IsoLevel level : AllLevels()) {
    const std::string name = IsoLevelName(level);
    ASSERT_FALSE(name.empty());
    ASSERT_EQ(seen.count(name), 0u) << "duplicate level name " << name;
    seen[name] = level;
    // The display name lowercased with '-' -> '_' is a parseable spelling.
    std::string spelling;
    for (char ch : name) {
      spelling += ch == '-' ? '_' : static_cast<char>(tolower(ch));
    }
    IsoLevel round = IsoLevel::kSerializable;
    ASSERT_TRUE(ParseIsoLevel(spelling, &round)) << spelling;
    EXPECT_EQ(round, level) << spelling;
  }
  // SSI is the only rung whose policy arms the rw-antidependency tracker.
  for (IsoLevel level : AllLevels()) {
    EXPECT_EQ(PolicyFor(level).ssi, level == IsoLevel::kSsi)
        << IsoLevelName(level);
  }
}

TEST(SpecRunner, DeterministicAcrossRunnersAndRepeats) {
  Result<IsolationSpec> parsed =
      ParseSpecFile(std::string(SEMCOR_SPECS_DIR) + "/two-ids.spec");
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  Result<CompiledSpec> compiled = CompileSpec(parsed.value());
  ASSERT_TRUE(compiled.ok()) << compiled.status().message();

  // Two independent runners: identical reports bit for bit.
  std::string first;
  for (int i = 0; i < 2; ++i) {
    SpecRunner runner(compiled.value());
    ASSERT_TRUE(runner.Init().ok());
    Result<SpecReport> report = runner.RunAllLevels();
    ASSERT_TRUE(report.ok()) << report.status().message();
    if (first.empty()) {
      first = report.value().Golden();
    } else {
      EXPECT_EQ(report.value().Golden(), first);
    }
  }

  // Re-running one level on one runner (world reset between permutations
  // and between calls) is also stable.
  SpecRunner runner(compiled.value());
  ASSERT_TRUE(runner.Init().ok());
  std::string row;
  for (int i = 0; i < 3; ++i) {
    Result<LevelOutcome> out = runner.RunLevel(IsoLevel::kSsi);
    ASSERT_TRUE(out.ok());
    if (row.empty()) {
      row = out.value().Row();
    } else {
      EXPECT_EQ(out.value().Row(), row);
    }
  }
}

TEST(SpecConformance, AllSpecsMatchTheirGoldens) {
  const std::vector<std::string> specs = ListSpecs();
  // The suite ships at least a dozen ported specs; an empty or shrunken
  // directory is itself a failure.
  ASSERT_GE(specs.size(), 12u);

  bool saw_two_ids = false;
  for (const std::string& file : specs) {
    SCOPED_TRACE(file);
    Result<IsolationSpec> parsed =
        ParseSpecFile(std::string(SEMCOR_SPECS_DIR) + "/" + file);
    ASSERT_TRUE(parsed.ok()) << parsed.status().message();
    Result<CompiledSpec> compiled = CompileSpec(parsed.value());
    ASSERT_TRUE(compiled.ok()) << compiled.status().message();
    SpecRunner runner(compiled.value());
    ASSERT_TRUE(runner.Init().ok());
    Result<SpecReport> report = runner.RunAllLevels();
    ASSERT_TRUE(report.ok()) << report.status().message();
    ASSERT_EQ(report.value().levels.size(),
              static_cast<size_t>(kIsoLevelCount));

    const std::string golden_path = std::string(SEMCOR_SPECS_DIR) +
                                    "/golden/" + parsed.value().name +
                                    ".golden";
    if (g_update_golden) {
      ASSERT_TRUE(
          WriteTextFile(golden_path, report.value().Golden()).ok());
      continue;
    }
    Result<std::string> text = ReadTextFile(golden_path);
    ASSERT_TRUE(text.ok()) << text.status().message()
                           << " (regenerate with --update-golden)";
    Result<SpecReport> golden = ParseGolden(text.value(), golden_path);
    ASSERT_TRUE(golden.ok()) << golden.status().message();
    ASSERT_EQ(golden.value().levels.size(), report.value().levels.size());
    for (size_t i = 0; i < report.value().levels.size(); ++i) {
      EXPECT_EQ(report.value().levels[i], golden.value().levels[i])
          << "observed: " << report.value().levels[i].Row() << "\n"
          << "expected: " << golden.value().levels[i].Row();
    }

    if (parsed.value().name == "two-ids") {
      saw_two_ids = true;
      // The fidelity anchor: two-ids documents exactly 16 SSI aborts over
      // its 90 interleavings — 12 false positives (s3 not declared read
      // only) plus the 4 required failures — and snapshot isolation
      // committing all 270 transactions.
      for (const LevelOutcome& o : report.value().levels) {
        if (o.level == IsoLevel::kSsi) {
          EXPECT_EQ(o.perms, 90);
          EXPECT_EQ(o.ssi, 16);
          EXPECT_EQ(o.ssi_fp, 12);
          EXPECT_EQ(o.ssi_req, 4);
          EXPECT_EQ(o.nonser, 0);
        }
        if (o.level == IsoLevel::kSnapshot) {
          EXPECT_EQ(o.committed, 270);
          EXPECT_EQ(o.aborted, 0);
        }
        // SSI's whole point: no level-SSI run may leave a non-serializable
        // committed execution behind.
        if (o.level == IsoLevel::kSsi) {
          EXPECT_EQ(o.nonser, 0);
        }
      }
    }
  }
  EXPECT_TRUE(g_update_golden || saw_two_ids)
      << "two-ids.spec is the anchor fixture and must exist";
}

}  // namespace
}  // namespace semcor::spec

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden") {
      semcor::spec::g_update_golden = true;
    }
  }
  return RUN_ALL_TESTS();
}
