// Randomized end-to-end validation of the theorems: random interleavings of
// workload transactions driven step-by-step must be semantically correct
// whenever every transaction runs at (or above) its advised level — across
// many seeds. Below-level runs must show violations for at least some seeds
// (the anomalies are real, not hypothetical).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sem/rt/oracle.h"
#include "txn/driver.h"
#include "workload/workload.h"

namespace semcor {
namespace {

Workload MakeByName(const std::string& name) {
  if (name == "banking") return MakeBankingWorkload();
  if (name == "payroll") return MakePayrollWorkload();
  if (name == "orders_unique") return MakeOrdersWorkload(true);
  return MakeTpccWorkload();
}

std::map<std::string, IsoLevel> AllAtLevel(const Workload& w,
                                           IsoLevel level) {
  std::map<std::string, IsoLevel> out;
  for (const auto& [type, unused] : w.paper_levels) out[type] = level;
  return out;
}

struct RoundResult {
  bool ok = true;
  int committed = 0;
};

/// Runs `n` random transactions with a random step interleaving at the
/// given level assignment and checks the oracle.
RoundResult RunRandomRound(const Workload& w,
                           const std::map<std::string, IsoLevel>& levels,
                           IsoLevel fallback, int n, Rng* rng) {
  Store store;
  LockManager locks;
  TxnManager mgr(&store, &locks);
  EXPECT_TRUE(w.setup(&store).ok());
  MapEvalContext initial = store.SnapshotToMap();
  CommitLog log;
  StepDriver driver(&mgr, &log);
  for (int i = 0; i < n; ++i) {
    WorkItem item = w.DrawFromMix(*rng, levels, fallback);
    driver.Add(item.program, item.level);
  }
  for (int step = 0; step < 48 * n && !driver.AllDone(); ++step) {
    driver.Step(static_cast<int>(rng->Uniform(0, driver.size() - 1)));
  }
  driver.RunRoundRobin();
  RoundResult out;
  for (int i = 0; i < driver.size(); ++i) {
    out.committed +=
        driver.run(i).outcome() == StepOutcome::kCommitted ? 1 : 0;
  }
  out.ok = CheckSemanticCorrectness(initial, store, log, w.app.invariant).ok();
  return out;
}

struct Case {
  const char* workload;
  uint64_t seed;
};

class AdvisedLevelsTest : public ::testing::TestWithParam<Case> {};

TEST_P(AdvisedLevelsTest, RandomInterleavingsStayCorrect) {
  const Case& c = GetParam();
  Workload w = MakeByName(c.workload);
  Rng rng(c.seed);
  int total_committed = 0;
  for (int round = 0; round < 12; ++round) {
    RoundResult r = RunRandomRound(w, w.paper_levels,
                                   IsoLevel::kSerializable, 5, &rng);
    EXPECT_TRUE(r.ok) << c.workload << " seed " << c.seed << " round "
                      << round;
    total_committed += r.committed;
  }
  EXPECT_GT(total_committed, 20);  // the rounds actually did work
}

TEST_P(AdvisedLevelsTest, AllSerializableStaysCorrect) {
  const Case& c = GetParam();
  Workload w = MakeByName(c.workload);
  Rng rng(c.seed + 99);
  for (int round = 0; round < 8; ++round) {
    RoundResult r = RunRandomRound(
        w, {}, IsoLevel::kSerializable, 5, &rng);
    EXPECT_TRUE(r.ok) << c.workload << " seed " << c.seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, AdvisedLevelsTest,
    ::testing::Values(Case{"banking", 1}, Case{"banking", 2},
                      Case{"banking", 3}, Case{"payroll", 1},
                      Case{"payroll", 2}, Case{"orders_unique", 1},
                      Case{"orders_unique", 2}, Case{"tpcc", 1},
                      Case{"tpcc", 2}));

TEST(BelowLevelTest, BankingBelowAdviceEventuallyViolates) {
  // Everything at READ COMMITTED (below the advised REPEATABLE READ):
  // randomized interleavings must produce at least one violating round.
  Workload w = MakeBankingWorkload();
  Rng rng(7);
  int violations = 0;
  for (int round = 0; round < 30; ++round) {
    RoundResult r = RunRandomRound(
        w, AllAtLevel(w, IsoLevel::kReadCommitted), IsoLevel::kReadCommitted, 5, &rng);
    violations += r.ok ? 0 : 1;
  }
  EXPECT_GT(violations, 0);
}

TEST(BelowLevelTest, OrdersUniqueBelowAdviceEventuallyViolates) {
  Workload w = MakeOrdersWorkload(true);
  Rng rng(13);
  int violations = 0;
  for (int round = 0; round < 30; ++round) {
    RoundResult r = RunRandomRound(
        w, AllAtLevel(w, IsoLevel::kReadCommitted), IsoLevel::kReadCommitted, 5, &rng);
    violations += r.ok ? 0 : 1;
  }
  EXPECT_GT(violations, 0);
}

}  // namespace
}  // namespace semcor
