#include <gtest/gtest.h>

#include "sem/rt/monitor.h"
#include "workload/workload.h"

namespace semcor {
namespace {

std::shared_ptr<const TxnProgram> Program(const Workload& w,
                                          const std::string& type,
                                          std::map<std::string, Value> params) {
  for (const TransactionType& t : w.app.types) {
    if (t.name == type) return std::make_shared<TxnProgram>(t.make(params));
  }
  return nullptr;
}

class MonitorTest : public ::testing::Test {
 protected:
  MonitorTest() : mgr_(&store_, &locks_) {}

  Store store_;
  LockManager locks_;
  TxnManager mgr_;
};

TEST_F(MonitorTest, NoInvalidationInSerialExecution) {
  Workload w = MakeBankingWorkload();
  ASSERT_TRUE(w.setup(&store_).ok());
  StepDriver driver(&mgr_);
  InvalidationMonitor monitor(&store_, &driver);
  driver.Add(Program(w, "Deposit_sav",
                     {{"i", Value::Int(1)}, {"d", Value::Int(5)}}),
             IsoLevel::kSerializable);
  driver.Add(Program(w, "Withdraw_sav",
                     {{"i", Value::Int(1)}, {"w", Value::Int(3)}}),
             IsoLevel::kSerializable);
  while (!driver.run(0).Done()) driver.Step(0);
  while (!driver.run(1).Done()) driver.Step(1);
  EXPECT_TRUE(monitor.events().empty());
  EXPECT_GT(monitor.evaluations(), 0);
}

TEST_F(MonitorTest, WriteSkewInvalidatesReadStepAssertion) {
  Workload w = MakeBankingWorkload();
  ASSERT_TRUE(w.setup(&store_).ok());
  StepDriver driver(&mgr_);
  InvalidationMonitor monitor(&store_, &driver);
  driver.Add(Program(w, "Withdraw_sav",
                     {{"i", Value::Int(1)}, {"w", Value::Int(15)}}),
             IsoLevel::kSnapshot);
  driver.Add(Program(w, "Withdraw_ch",
                     {{"i", Value::Int(1)}, {"w", Value::Int(15)}}),
             IsoLevel::kSnapshot);
  driver.RunRoundRobin();
  // Some active assertion of one withdraw was invalidated by the other's
  // (commit-time) write.
  bool cross_invalidation = false;
  for (const InvalidationEvent& e : monitor.events()) {
    if (e.victim != e.writer) cross_invalidation = true;
  }
  EXPECT_TRUE(cross_invalidation);
}

TEST_F(MonitorTest, DirtyHalfUpdateInvalidatesPrintRecordsInvariant) {
  Workload w = MakePayrollWorkload();
  ASSERT_TRUE(w.setup(&store_).ok());
  StepDriver driver(&mgr_);
  InvalidationMonitor monitor(&store_, &driver);
  driver.Add(Program(w, "Print_Records", {{"i", Value::Int(1)}}),
             IsoLevel::kReadUncommitted);
  driver.Add(Program(w, "Hours",
                     {{"i", Value::Int(1)}, {"h", Value::Int(4)}}),
             IsoLevel::kReadCommitted);
  // Hours' first update runs while Print_Records is at its I_sal control
  // point: the assertion flips to false (interference became invalidation).
  ASSERT_EQ(driver.Step(1), StepOutcome::kRunning);
  bool victim_zero = false;
  for (const InvalidationEvent& e : monitor.events()) {
    if (e.victim == 0 && e.writer == 1) victim_zero = true;
  }
  EXPECT_TRUE(victim_zero);
}

}  // namespace
}  // namespace semcor
