#include <gtest/gtest.h>

#include "sem/check/wp.h"
#include "sem/expr/simplify.h"
#include "sem/logic/decide.h"
#include "sem/prog/builder.h"

namespace semcor {
namespace {

StmtPtr FirstStmt(const TxnProgram& p) { return p.body.front(); }

/// Helper: {phi} stmt {post} provable?
Verdict Triple(const Expr& phi, const Stmt& stmt, const Expr& post) {
  FreshNames fresh;
  Result<WpResult> wp = Wp(stmt, post, &fresh);
  EXPECT_TRUE(wp.ok());
  return DecideValidity(Simplify(Implies(phi, wp.value().formula))).verdict;
}

TEST(WpTest, WriteIsSubstitution) {
  ProgramBuilder b("T");
  b.Write("x", Add(Local("X"), Lit(int64_t{1})));
  TxnProgram p = b.Build({});
  FreshNames fresh;
  Result<WpResult> wp =
      Wp(*FirstStmt(p), Ge(DbVar("x"), Lit(int64_t{1})), &fresh);
  ASSERT_TRUE(wp.ok());
  EXPECT_TRUE(wp.value().exact);
  EXPECT_EQ(ToString(Simplify(wp.value().formula)), "(($X + 1) >= 1)");
}

TEST(WpTest, ReadSubstitutesLocal) {
  ProgramBuilder b("T");
  b.Read("X", "x");
  TxnProgram p = b.Build({});
  FreshNames fresh;
  Result<WpResult> wp =
      Wp(*FirstStmt(p), Eq(Local("X"), DbVar("x")), &fresh);
  ASSERT_TRUE(wp.ok());
  EXPECT_TRUE(IsTrueLiteral(Simplify(wp.value().formula)));
}

TEST(WpTest, ControlFlowRejected) {
  ProgramBuilder b("T");
  b.If(Lit(true), [](ProgramBuilder&) {});
  TxnProgram p = b.Build({});
  FreshNames fresh;
  EXPECT_FALSE(Wp(*FirstStmt(p), True(), &fresh).ok());
}

TEST(WpTest, AbortIsIdentity) {
  ProgramBuilder b("T");
  b.Abort();
  TxnProgram p = b.Build({});
  FreshNames fresh;
  Expr post = Ge(DbVar("x"), Lit(int64_t{0}));
  Result<WpResult> wp = Wp(*FirstStmt(p), post, &fresh);
  ASSERT_TRUE(wp.ok());
  EXPECT_TRUE(ExprEquals(wp.value().formula, post));
}

// ---- INSERT transformers ----

Stmt InsertStmt(std::map<std::string, Expr> values) {
  Stmt s;
  s.kind = StmtKind::kInsert;
  s.table = "T";
  s.values = std::move(values);
  s.pre = True();
  return s;
}

TEST(WpTest, InsertPreservesExistsMonotonically) {
  Stmt ins = InsertStmt({{"k", Lit(int64_t{5})}});
  Expr post = Exists("T", Gt(Attr("k"), Lit(int64_t{0})));
  EXPECT_EQ(Triple(post, ins, post), Verdict::kValid);
}

TEST(WpTest, InsertCanEstablishExists) {
  Stmt ins = InsertStmt({{"k", Lit(int64_t{5})}});
  Expr post = Exists("T", Eq(Attr("k"), Lit(int64_t{5})));
  // Even from `true` the insert establishes existence.
  EXPECT_EQ(Triple(True(), ins, post), Verdict::kValid);
}

TEST(WpTest, InsertBreaksForallWhenValueViolates) {
  Stmt ins = InsertStmt({{"k", Lit(int64_t{-3})}});
  Expr post = Forall("T", True(), Ge(Attr("k"), Lit(int64_t{0})));
  EXPECT_NE(Triple(post, ins, post), Verdict::kValid);
}

TEST(WpTest, InsertPreservesForallWhenValueComplies) {
  Stmt ins = InsertStmt({{"k", Lit(int64_t{3})}});
  Expr post = Forall("T", True(), Ge(Attr("k"), Lit(int64_t{0})));
  EXPECT_EQ(Triple(post, ins, post), Verdict::kValid);
}

TEST(WpTest, InsertCountExact) {
  Stmt ins = InsertStmt({{"k", Lit(int64_t{1})}});
  // {count==n} insert {count==n+1} when the tuple matches.
  Expr c = Count("T", Eq(Attr("k"), Lit(int64_t{1})));
  Expr phi = Eq(c, Local("n"));
  Expr post = Eq(c, Add(Local("n"), Lit(int64_t{1})));
  EXPECT_EQ(Triple(phi, ins, post), Verdict::kValid);
  // And a non-matching insert leaves it unchanged.
  Stmt other = InsertStmt({{"k", Lit(int64_t{2})}});
  EXPECT_EQ(Triple(phi, other, phi), Verdict::kValid);
}

TEST(WpTest, InsertSumExact) {
  Stmt ins = InsertStmt({{"k", Lit(int64_t{1})}, {"v", Lit(int64_t{7})}});
  Expr s = SumOf("T", "v", Eq(Attr("k"), Lit(int64_t{1})));
  Expr phi = Eq(s, Local("n"));
  Expr post = Eq(s, Add(Local("n"), Lit(int64_t{7})));
  EXPECT_EQ(Triple(phi, ins, post), Verdict::kValid);
}

TEST(WpTest, InsertMaxBounds) {
  Stmt ins = InsertStmt({{"v", Lit(int64_t{5})}});
  Expr m = MaxOf("T", "v", True(), 0);
  // After inserting 5, max >= 5.
  EXPECT_EQ(Triple(True(), ins, Ge(m, Lit(int64_t{5}))), Verdict::kValid);
  // {max <= 4} insert(5) {max <= 5}.
  EXPECT_EQ(Triple(Le(m, Lit(int64_t{4})), ins, Le(m, Lit(int64_t{5}))),
            Verdict::kValid);
  // But {max <= 4} insert(5) {max <= 4} must fail.
  EXPECT_NE(Triple(Le(m, Lit(int64_t{4})), ins, Le(m, Lit(int64_t{4}))),
            Verdict::kValid);
}

TEST(WpTest, InsertWithUncoveredAttrAbstains) {
  // Predicate depends on attribute `z` the insert doesn't provide.
  Stmt ins = InsertStmt({{"k", Lit(int64_t{1})}});
  Expr post = Exists("T", Gt(Attr("z"), Lit(int64_t{0})));
  FreshNames fresh;
  Result<WpResult> wp = Wp(ins, post, &fresh);
  ASSERT_TRUE(wp.ok());
  EXPECT_FALSE(wp.value().exact);
}

// ---- DELETE transformers ----

Stmt DeleteStmt(Expr pred) {
  Stmt s;
  s.kind = StmtKind::kDelete;
  s.table = "T";
  s.pred = std::move(pred);
  s.pre = True();
  return s;
}

TEST(WpTest, DeletePreservesForall) {
  Stmt del = DeleteStmt(Eq(Attr("k"), Lit(int64_t{1})));
  Expr post = Forall("T", True(), Ge(Attr("v"), Lit(int64_t{0})));
  EXPECT_EQ(Triple(post, del, post), Verdict::kValid);
}

TEST(WpTest, DeleteDisjointPredicatePreservesAtom) {
  Stmt del = DeleteStmt(Eq(Attr("k"), Lit(int64_t{1})));
  Expr post = Exists("T", Eq(Attr("k"), Lit(int64_t{2})));
  EXPECT_EQ(Triple(post, del, post), Verdict::kValid);
}

TEST(WpTest, DeleteOverlappingBreaksExists) {
  Stmt del = DeleteStmt(Eq(Attr("k"), Lit(int64_t{1})));
  Expr post = Exists("T", Eq(Attr("k"), Lit(int64_t{1})));
  EXPECT_NE(Triple(post, del, post), Verdict::kValid);
}

TEST(WpTest, DeleteCountBounded) {
  Stmt del = DeleteStmt(True());
  Expr c = Count("T", True());
  // {count <= 5} delete {count <= 5} (can only shrink).
  EXPECT_EQ(Triple(Le(c, Lit(int64_t{5})), del, Le(c, Lit(int64_t{5}))),
            Verdict::kValid);
  // {count >= 1} delete {count >= 1} must fail.
  EXPECT_NE(Triple(Ge(c, Lit(int64_t{1})), del, Ge(c, Lit(int64_t{1}))),
            Verdict::kValid);
}

// ---- UPDATE transformers ----

Stmt UpdateStmt(Expr pred, std::map<std::string, Expr> sets) {
  Stmt s;
  s.kind = StmtKind::kUpdate;
  s.table = "T";
  s.pred = std::move(pred);
  s.sets = std::move(sets);
  s.pre = True();
  return s;
}

TEST(WpTest, UpdateUntouchedAttributesPreserveAtom) {
  Stmt upd = UpdateStmt(True(), {{"v", Lit(int64_t{0})}});
  Expr post = Exists("T", Eq(Attr("k"), Lit(int64_t{1})));
  EXPECT_EQ(Triple(post, upd, post), Verdict::kValid);
}

TEST(WpTest, UpdateForallConclusionRewrites) {
  // Payroll core: {forall(id==1: 10*h == s)} hours += d; sal += 10*d
  // composes to preservation; a single update does not preserve it but
  // establishes the shifted invariant.
  Expr inv = Forall("T", Eq(Attr("id"), Lit(int64_t{1})),
                    Eq(Mul(Lit(int64_t{10}), Attr("h")), Attr("s")));
  Stmt u1 = UpdateStmt(Eq(Attr("id"), Lit(int64_t{1})),
                       {{"h", Add(Attr("h"), Local("d"))}});
  Expr shifted = Forall("T", Eq(Attr("id"), Lit(int64_t{1})),
                        Eq(Mul(Lit(int64_t{10}),
                               Sub(Attr("h"), Local("d"))),
                           Attr("s")));
  EXPECT_EQ(Triple(inv, u1, shifted), Verdict::kValid);
  EXPECT_NE(Triple(inv, u1, inv), Verdict::kValid);
  // And the second update restores the invariant.
  Stmt u2 = UpdateStmt(Eq(Attr("id"), Lit(int64_t{1})),
                       {{"s", Add(Attr("s"), Mul(Lit(int64_t{10}), Local("d")))}});
  EXPECT_EQ(Triple(shifted, u2, inv), Verdict::kValid);
}

TEST(WpTest, GuardedUpdatePreservesNonNegativity) {
  // update T set v = v - q where v >= q keeps v >= 0.
  Expr inv = Forall("T", True(), Ge(Attr("v"), Lit(int64_t{0})));
  Stmt upd = UpdateStmt(Ge(Attr("v"), Local("q")),
                        {{"v", Sub(Attr("v"), Local("q"))}});
  EXPECT_EQ(Triple(inv, upd, inv), Verdict::kValid);
}

TEST(WpTest, UnguardedDecrementBreaksNonNegativity) {
  Expr inv = Forall("T", True(), Ge(Attr("v"), Lit(int64_t{0})));
  Stmt upd = UpdateStmt(True(), {{"v", Sub(Attr("v"), Local("q"))}});
  EXPECT_NE(Triple(And(inv, Ge(Local("q"), Lit(int64_t{1}))), upd, inv),
            Verdict::kValid);
}

TEST(WpTest, UpdateMembershipSafeWhenDisjoint) {
  // Count over k==1 unaffected by updates of k==2 rows even though the
  // update touches k itself... only if provably no flow between them.
  Stmt upd = UpdateStmt(Eq(Attr("k"), Lit(int64_t{2})),
                        {{"k", Lit(int64_t{2})}});
  Expr c = Count("T", Eq(Attr("k"), Lit(int64_t{1})));
  Expr phi = Eq(c, Local("n"));
  EXPECT_EQ(Triple(phi, upd, phi), Verdict::kValid);
}

TEST(WpTest, UpdateMembershipChangeAbstains) {
  Stmt upd = UpdateStmt(Eq(Attr("k"), Lit(int64_t{2})),
                        {{"k", Lit(int64_t{1})}});
  Expr c = Count("T", Eq(Attr("k"), Lit(int64_t{1})));
  Expr phi = Eq(c, Local("n"));
  EXPECT_NE(Triple(phi, upd, phi), Verdict::kValid);
}

// ---- misc ----

TEST(WpTest, ReplaceSubterm) {
  Expr c = Count("T", True());
  Expr e = Gt(Add(c, Lit(int64_t{1})), Lit(int64_t{0}));
  Expr out = ReplaceSubterm(e, c, Local("n"));
  EXPECT_EQ(ToString(out), "(($n + 1) > 0)");
}

TEST(WpTest, ProvablyDisjoint) {
  EXPECT_TRUE(ProvablyDisjoint(Eq(Attr("k"), Lit(int64_t{1})),
                               Eq(Attr("k"), Lit(int64_t{2}))));
  EXPECT_FALSE(ProvablyDisjoint(Eq(Attr("k"), Lit(int64_t{1})),
                                Gt(Attr("v"), Lit(int64_t{0}))));
  // Distinct string constants on the same attribute are provably disjoint
  // (predicate-lock compatibility for string-keyed predicates).
  EXPECT_TRUE(ProvablyDisjoint(Eq(Attr("c"), Lit(std::string("a"))),
                               Eq(Attr("c"), Lit(std::string("b")))));
  EXPECT_FALSE(ProvablyDisjoint(Eq(Attr("c"), Lit(std::string("a"))),
                                Eq(Attr("c"), Lit(std::string("a")))));
}

TEST(WpTest, OtherTableAtomsUntouched) {
  Stmt ins = InsertStmt({{"k", Lit(int64_t{1})}});
  Expr post = Exists("U", Eq(Attr("k"), Lit(int64_t{1})));
  FreshNames fresh;
  Result<WpResult> wp = Wp(ins, post, &fresh);
  ASSERT_TRUE(wp.ok());
  EXPECT_TRUE(ExprEquals(wp.value().formula, post));
}

}  // namespace
}  // namespace semcor
