#include <gtest/gtest.h>

#include "sem/check/report.h"
#include "workload/workload.h"

namespace semcor {
namespace {

TEST(ReportTest, AdviceMentionsRecommendationAndFailures) {
  Workload w = MakePayrollWorkload();
  LevelAdvisor advisor(w.app, AdvisorOptions());
  LevelAdvice advice = advisor.Advise("Print_Records");
  std::string text = RenderAdvice(advice);
  EXPECT_NE(text.find("Print_Records -> READ-COMMITTED"), std::string::npos)
      << text;
  // The RU failure and its interfering source are visible.
  EXPECT_NE(text.find("READ-UNCOMMITTED — not correct"), std::string::npos)
      << text;
  EXPECT_NE(text.find("Hours"), std::string::npos);
}

TEST(ReportTest, ExcusesRendered) {
  Workload w = MakeBankingWorkload();
  LevelAdvisor advisor(w.app, AdvisorOptions());
  LevelAdvice advice = advisor.Advise("Withdraw_sav");
  std::string text = RenderAdvice(advice);
  EXPECT_NE(text.find("write sets intersect"), std::string::npos) << text;
}

TEST(ReportTest, ApplicationReportHasSummaryTable) {
  Workload w = MakePayrollWorkload();
  LevelAdvisor advisor(w.app, AdvisorOptions());
  std::string text =
      RenderApplicationReport(w.app, advisor.AdviseAll());
  EXPECT_NE(text.find("# Isolation-level analysis: payroll"),
            std::string::npos);
  // Rows are padded to the widest type name, so match the cell start.
  EXPECT_NE(text.find("| Hours "), std::string::npos) << text;
  EXPECT_NE(text.find("| Print_Records "), std::string::npos);
}

TEST(ReportTest, IncludePassingListsDischargedObligations) {
  Workload w = MakePayrollWorkload();
  TheoremEngine engine(w.app, CheckOptions());
  LevelCheckReport report =
      engine.CheckAtLevel("Print_Records", IsoLevel::kReadCommitted);
  ReportOptions options;
  options.include_passing = true;
  std::string with = RenderLevelReport(report, options);
  std::string without = RenderLevelReport(report);
  EXPECT_GT(with.size(), without.size());
  EXPECT_NE(with.find("NO-INTERFERENCE"), std::string::npos) << with;
}

}  // namespace
}  // namespace semcor
