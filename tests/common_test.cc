#include <gtest/gtest.h>

#include "common/cli.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/str_util.h"
#include "common/tuple.h"
#include "common/value.h"
#include "txn/isolation.h"

namespace semcor {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_EQ(Status::Ok().ToString(), "OK");
  Status s = Status::NotFound("thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Code::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: thing");
}

TEST(StatusTest, TransactionFailureClassification) {
  EXPECT_TRUE(Status::Aborted("").IsTransactionFailure());
  EXPECT_TRUE(Status::Deadlock("").IsTransactionFailure());
  EXPECT_TRUE(Status::Conflict("").IsTransactionFailure());
  EXPECT_FALSE(Status::WouldBlock("").IsTransactionFailure());
  EXPECT_FALSE(Status::NotFound("").IsTransactionFailure());
}

TEST(ResultTest, ValueAndStatus) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> err = Status::Internal("boom");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), Code::kInternal);
}

TEST(StrUtilTest, StrCatJoinSplit) {
  EXPECT_EQ(StrCat("a", 1, "-", 2.5), "a1-2.5");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_TRUE(Split("", ',').empty());
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

TEST(StrUtilTest, ItemNames) {
  EXPECT_EQ(ItemName("acct", 3, "bal"), "acct[3].bal");
  EXPECT_EQ(ItemName("cust", 7), "cust[7]");
}

TEST(ValueTest, TypesAndEquality) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(5).AsInt(), 5);
  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_EQ(Value::Str("x").AsString(), "x");
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_NE(Value::Int(1), Value::Int(2));
  EXPECT_NE(Value::Int(1), Value::Str("1"));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Str("hi").ToString(), "\"hi\"");
  EXPECT_EQ(Value::Null().ToString(), "null");
}

TEST(TupleTest, ToString) {
  Tuple t = {{"a", Value::Int(1)}, {"b", Value::Str("x")}};
  EXPECT_EQ(TupleToString(t), "{a: 1, b: \"x\"}");
}

TEST(RngTest, DeterministicAndInRange) {
  Rng a(7), b(7);
  for (int i = 0; i < 50; ++i) {
    const int64_t va = a.Uniform(-3, 9);
    EXPECT_EQ(va, b.Uniform(-3, 9));
    EXPECT_GE(va, -3);
    EXPECT_LE(va, 9);
  }
}

TEST(IsolationTest, PolicyTable) {
  // The locking disciplines of [2], level by level.
  LevelPolicy ru = PolicyFor(IsoLevel::kReadUncommitted);
  EXPECT_FALSE(ru.read_locks);
  EXPECT_FALSE(ru.snapshot_reads);

  LevelPolicy rc = PolicyFor(IsoLevel::kReadCommitted);
  EXPECT_TRUE(rc.read_locks);
  EXPECT_FALSE(rc.long_read_locks);
  EXPECT_FALSE(rc.fcw_validation);

  LevelPolicy fcw = PolicyFor(IsoLevel::kReadCommittedFcw);
  EXPECT_TRUE(fcw.read_locks);
  EXPECT_TRUE(fcw.fcw_validation);
  EXPECT_FALSE(fcw.long_read_locks);

  LevelPolicy rr = PolicyFor(IsoLevel::kRepeatableRead);
  EXPECT_TRUE(rr.long_read_locks);
  EXPECT_FALSE(rr.select_predicate_locks);

  LevelPolicy ser = PolicyFor(IsoLevel::kSerializable);
  EXPECT_TRUE(ser.long_read_locks);
  EXPECT_TRUE(ser.select_predicate_locks);

  LevelPolicy snap = PolicyFor(IsoLevel::kSnapshot);
  EXPECT_TRUE(snap.snapshot_reads);
  EXPECT_TRUE(snap.deferred_writes);
  EXPECT_TRUE(snap.fcw_validation);
  EXPECT_FALSE(snap.read_locks);
}

TEST(IsolationTest, LevelNames) {
  EXPECT_STREQ(IsoLevelName(IsoLevel::kReadCommittedFcw),
               "READ-COMMITTED-FCW");
  EXPECT_STREQ(IsoLevelName(IsoLevel::kSnapshot), "SNAPSHOT");
}

TEST(IsolationTest, ParseIsoLevel) {
  IsoLevel level;
  ASSERT_TRUE(ParseIsoLevel("ru", &level));
  EXPECT_EQ(level, IsoLevel::kReadUncommitted);
  ASSERT_TRUE(ParseIsoLevel("read_committed", &level));
  EXPECT_EQ(level, IsoLevel::kReadCommitted);
  ASSERT_TRUE(ParseIsoLevel("rc_fcw", &level));
  EXPECT_EQ(level, IsoLevel::kReadCommittedFcw);
  ASSERT_TRUE(ParseIsoLevel("rr", &level));
  EXPECT_EQ(level, IsoLevel::kRepeatableRead);
  ASSERT_TRUE(ParseIsoLevel("ser", &level));
  EXPECT_EQ(level, IsoLevel::kSerializable);
  ASSERT_TRUE(ParseIsoLevel("si", &level));
  EXPECT_EQ(level, IsoLevel::kSnapshot);
  EXPECT_FALSE(ParseIsoLevel("read-committed", &level));
  EXPECT_FALSE(ParseIsoLevel("", &level));
}

TEST(IsolationTest, IsoLevelFromIndex) {
  IsoLevel level;
  for (int i = 0; i < kIsoLevelCount; ++i) {
    ASSERT_TRUE(IsoLevelFromIndex(i, &level)) << i;
    EXPECT_EQ(static_cast<int>(level), i);
  }
  EXPECT_FALSE(IsoLevelFromIndex(-1, &level));
  EXPECT_FALSE(IsoLevelFromIndex(kIsoLevelCount, &level));
  EXPECT_FALSE(IsoLevelFromIndex(255, &level));
}

TEST(StrUtilTest, JsonEscape) {
  // Plain text passes through untouched, including non-ASCII bytes (JSON is
  // UTF-8; only the structural and control characters need escaping).
  EXPECT_EQ(JsonEscape("plain text"), "plain text");
  EXPECT_EQ(JsonEscape("caf\xc3\xa9"), "caf\xc3\xa9");
  EXPECT_EQ(JsonEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonEscape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(JsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(JsonEscape("\b\f"), "\\b\\f");
  // Remaining C0 control characters become \u00XX escapes.
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(JsonEscape(std::string(1, '\x1f')), "\\u001f");
  EXPECT_EQ(JsonEscape(std::string(1, '\0')), "\\u0000");
  EXPECT_EQ(JsonEscape(""), "");
}

TEST(StrUtilTest, JsonQuote) {
  EXPECT_EQ(JsonQuote("x"), "\"x\"");
  EXPECT_EQ(JsonQuote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonQuote(""), "\"\"");
}

TEST(CliTest, ParsesEveryKind) {
  std::string s = "default";
  int i = 1;
  int64_t i64 = 2;
  uint64_t u64 = 3;
  bool flag = false;
  bool negated = true;
  cli::Flags flags("prog", "test");
  flags.Str("str", &s, "");
  flags.Int("int", &i, "");
  flags.I64("i64", &i64, "");
  flags.U64("u64", &u64, "");
  flags.Bool("flag", &flag, "");
  flags.Bool("negated", &negated, "");
  const char* argv[] = {"prog",       "--str=hello", "--int=-7",
                        "--i64=-900", "--u64=18",    "--flag",
                        "--negated=false"};
  ASSERT_TRUE(flags.Parse(7, const_cast<char**>(argv)));
  EXPECT_FALSE(flags.help_requested());
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(i, -7);
  EXPECT_EQ(i64, -900);
  EXPECT_EQ(u64, 18u);
  EXPECT_TRUE(flag);
  EXPECT_FALSE(negated);
}

TEST(CliTest, DurationSuffixes) {
  // The grammar itself: suffixed values scale to microseconds, bare numbers
  // are milliseconds (the common case for timeout flags).
  uint64_t us = 0;
  EXPECT_TRUE(cli::ParseDurationUs("250ms", &us));
  EXPECT_EQ(us, 250'000u);
  EXPECT_TRUE(cli::ParseDurationUs("2s", &us));
  EXPECT_EQ(us, 2'000'000u);
  EXPECT_TRUE(cli::ParseDurationUs("1500us", &us));
  EXPECT_EQ(us, 1500u);
  EXPECT_TRUE(cli::ParseDurationUs("40", &us));  // bare = ms
  EXPECT_EQ(us, 40'000u);
  EXPECT_TRUE(cli::ParseDurationUs("0", &us));
  EXPECT_EQ(us, 0u);

  EXPECT_FALSE(cli::ParseDurationUs("", &us));
  EXPECT_FALSE(cli::ParseDurationUs("-5ms", &us));
  EXPECT_FALSE(cli::ParseDurationUs("5m", &us));    // minutes unsupported
  EXPECT_FALSE(cli::ParseDurationUs("ms", &us));    // no digits
  EXPECT_FALSE(cli::ParseDurationUs("5 ms", &us));  // embedded space
  EXPECT_FALSE(cli::ParseDurationUs("5msx", &us));  // trailing junk
  // 2^64 us overflows when scaled from seconds.
  EXPECT_FALSE(cli::ParseDurationUs("18446744073709551615s", &us));

  // Round-trip formatting picks the largest exact unit.
  EXPECT_EQ(cli::FormatDurationUs(2'000'000), "2s");
  EXPECT_EQ(cli::FormatDurationUs(250'000), "250ms");
  EXPECT_EQ(cli::FormatDurationUs(1500), "1500us");
  EXPECT_EQ(cli::FormatDurationUs(0), "0ms");

  // And through the Flags parser, as the timeout flags use it.
  uint64_t stmt = 0, txn = 5'000'000, idle = 0;
  cli::Flags flags("prog", "test");
  flags.DurationUs("stmt-timeout", &stmt, "");
  flags.DurationUs("txn-timeout", &txn, "");
  flags.DurationUs("idle-timeout", &idle, "");
  const char* argv[] = {"prog", "--stmt-timeout=50ms", "--txn-timeout=2s",
                        "--idle-timeout=30"};
  ASSERT_TRUE(flags.Parse(4, const_cast<char**>(argv)));
  EXPECT_EQ(stmt, 50'000u);
  EXPECT_EQ(txn, 2'000'000u);
  EXPECT_EQ(idle, 30'000u);

  cli::Flags bad("prog", "test");
  bad.DurationUs("stmt-timeout", &stmt, "");
  const char* bad_argv[] = {"prog", "--stmt-timeout=fast"};
  EXPECT_FALSE(bad.Parse(2, const_cast<char**>(bad_argv)));
}

TEST(CliTest, RejectsBadInput) {
  int i = 0;
  bool b = false;
  {
    cli::Flags flags("prog", "test");
    flags.Int("n", &i, "");
    const char* argv[] = {"prog", "--unknown=1"};
    EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)));
  }
  {
    cli::Flags flags("prog", "test");
    flags.Int("n", &i, "");
    const char* argv[] = {"prog", "--n=12x"};  // trailing junk in a number
    EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)));
  }
  {
    cli::Flags flags("prog", "test");
    flags.Int("n", &i, "");
    const char* argv[] = {"prog", "--n"};  // non-bool flag without a value
    EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)));
  }
  {
    cli::Flags flags("prog", "test");
    flags.Bool("b", &b, "");
    const char* argv[] = {"prog", "--b=maybe"};
    EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)));
  }
  {
    cli::Flags flags("prog", "test");
    flags.Int("n", &i, "");
    const char* argv[] = {"prog", "stray"};  // positional argument
    EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)));
  }
  {
    uint64_t u = 0;
    cli::Flags flags("prog", "test");
    flags.U64("u", &u, "");
    const char* argv[] = {"prog", "--u=-1"};  // negative into unsigned
    EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)));
  }
}

TEST(CliTest, HelpStopsParsingWithoutFailing) {
  int i = 0;
  cli::Flags flags("prog", "test");
  flags.Int("n", &i, "");
  const char* argv[] = {"prog", "--help", "--garbage"};
  EXPECT_TRUE(flags.Parse(3, const_cast<char**>(argv)));
  EXPECT_TRUE(flags.help_requested());
  EXPECT_EQ(i, 0);  // nothing after --help is applied
}

TEST(CliTest, VersionStopsParsingWithoutFailing) {
  int i = 0;
  cli::Flags flags("prog", "test");
  flags.Int("n", &i, "");
  const char* argv[] = {"prog", "--version", "--garbage"};
  EXPECT_TRUE(flags.Parse(3, const_cast<char**>(argv)));
  EXPECT_TRUE(flags.version_requested());
  EXPECT_FALSE(flags.help_requested());
  EXPECT_EQ(i, 0);  // nothing after --version is applied
}

TEST(CliTest, RepeatedFlagsTakeLastValue) {
  // Last-wins lets wrapper scripts append overrides to a base command line
  // without stripping its earlier values.
  int i = 0;
  std::string s;
  cli::Flags flags("prog", "test");
  flags.Int("n", &i, "");
  flags.Str("s", &s, "");
  const char* argv[] = {"prog", "--n=4", "--s=a", "--n=8", "--n=15", "--s=b"};
  ASSERT_TRUE(flags.Parse(6, const_cast<char**>(argv)));
  EXPECT_EQ(i, 15);
  EXPECT_EQ(s, "b");
  EXPECT_EQ(flags.Occurrences("n"), 3);
  EXPECT_EQ(flags.Occurrences("s"), 2);
  EXPECT_EQ(flags.Occurrences("never-given"), 0);
}

TEST(CliTest, RepeatedBoolAndMalformedRepeatStillFail) {
  bool b = false;
  cli::Flags flags("prog", "test");
  flags.Bool("b", &b, "");
  {
    // Bare then explicit-false: the later occurrence wins.
    const char* argv[] = {"prog", "--b", "--b=false"};
    ASSERT_TRUE(flags.Parse(3, const_cast<char**>(argv)));
    EXPECT_FALSE(b);
    EXPECT_EQ(flags.Occurrences("b"), 2);
  }
  {
    // A malformed later occurrence is still an error, not silently ignored.
    cli::Flags again("prog", "test");
    again.Bool("b", &b, "");
    const char* argv[] = {"prog", "--b=true", "--b=maybe"};
    EXPECT_FALSE(again.Parse(3, const_cast<char**>(argv)));
  }
}

}  // namespace
}  // namespace semcor
