#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "common/str_util.h"
#include "common/tuple.h"
#include "common/value.h"
#include "txn/isolation.h"

namespace semcor {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_EQ(Status::Ok().ToString(), "OK");
  Status s = Status::NotFound("thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Code::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: thing");
}

TEST(StatusTest, TransactionFailureClassification) {
  EXPECT_TRUE(Status::Aborted("").IsTransactionFailure());
  EXPECT_TRUE(Status::Deadlock("").IsTransactionFailure());
  EXPECT_TRUE(Status::Conflict("").IsTransactionFailure());
  EXPECT_FALSE(Status::WouldBlock("").IsTransactionFailure());
  EXPECT_FALSE(Status::NotFound("").IsTransactionFailure());
}

TEST(ResultTest, ValueAndStatus) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> err = Status::Internal("boom");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), Code::kInternal);
}

TEST(StrUtilTest, StrCatJoinSplit) {
  EXPECT_EQ(StrCat("a", 1, "-", 2.5), "a1-2.5");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_TRUE(Split("", ',').empty());
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

TEST(StrUtilTest, ItemNames) {
  EXPECT_EQ(ItemName("acct", 3, "bal"), "acct[3].bal");
  EXPECT_EQ(ItemName("cust", 7), "cust[7]");
}

TEST(ValueTest, TypesAndEquality) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(5).AsInt(), 5);
  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_EQ(Value::Str("x").AsString(), "x");
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_NE(Value::Int(1), Value::Int(2));
  EXPECT_NE(Value::Int(1), Value::Str("1"));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Str("hi").ToString(), "\"hi\"");
  EXPECT_EQ(Value::Null().ToString(), "null");
}

TEST(TupleTest, ToString) {
  Tuple t = {{"a", Value::Int(1)}, {"b", Value::Str("x")}};
  EXPECT_EQ(TupleToString(t), "{a: 1, b: \"x\"}");
}

TEST(RngTest, DeterministicAndInRange) {
  Rng a(7), b(7);
  for (int i = 0; i < 50; ++i) {
    const int64_t va = a.Uniform(-3, 9);
    EXPECT_EQ(va, b.Uniform(-3, 9));
    EXPECT_GE(va, -3);
    EXPECT_LE(va, 9);
  }
}

TEST(IsolationTest, PolicyTable) {
  // The locking disciplines of [2], level by level.
  LevelPolicy ru = PolicyFor(IsoLevel::kReadUncommitted);
  EXPECT_FALSE(ru.read_locks);
  EXPECT_FALSE(ru.snapshot_reads);

  LevelPolicy rc = PolicyFor(IsoLevel::kReadCommitted);
  EXPECT_TRUE(rc.read_locks);
  EXPECT_FALSE(rc.long_read_locks);
  EXPECT_FALSE(rc.fcw_validation);

  LevelPolicy fcw = PolicyFor(IsoLevel::kReadCommittedFcw);
  EXPECT_TRUE(fcw.read_locks);
  EXPECT_TRUE(fcw.fcw_validation);
  EXPECT_FALSE(fcw.long_read_locks);

  LevelPolicy rr = PolicyFor(IsoLevel::kRepeatableRead);
  EXPECT_TRUE(rr.long_read_locks);
  EXPECT_FALSE(rr.select_predicate_locks);

  LevelPolicy ser = PolicyFor(IsoLevel::kSerializable);
  EXPECT_TRUE(ser.long_read_locks);
  EXPECT_TRUE(ser.select_predicate_locks);

  LevelPolicy snap = PolicyFor(IsoLevel::kSnapshot);
  EXPECT_TRUE(snap.snapshot_reads);
  EXPECT_TRUE(snap.deferred_writes);
  EXPECT_TRUE(snap.fcw_validation);
  EXPECT_FALSE(snap.read_locks);
}

TEST(IsolationTest, LevelNames) {
  EXPECT_STREQ(IsoLevelName(IsoLevel::kReadCommittedFcw),
               "READ-COMMITTED-FCW");
  EXPECT_STREQ(IsoLevelName(IsoLevel::kSnapshot), "SNAPSHOT");
}

}  // namespace
}  // namespace semcor
