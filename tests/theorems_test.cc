#include <gtest/gtest.h>

#include "sem/check/theorems.h"
#include "sem/prog/builder.h"
#include "workload/workload.h"

namespace semcor {
namespace {

LevelCheckReport Check(const Workload& w, const std::string& type,
                       IsoLevel level) {
  TheoremEngine engine(w.app, CheckOptions());
  return engine.CheckAtLevel(type, level);
}

// ---- banking (Example 3 / Figure 1) ----

TEST(BankingTheorems, WithdrawFailsReadCommitted) {
  Workload w = MakeBankingWorkload();
  LevelCheckReport r = Check(w, "Withdraw_sav", IsoLevel::kReadCommitted);
  EXPECT_FALSE(r.correct);
}

TEST(BankingTheorems, WithdrawCorrectAtRepeatableRead) {
  // Conventional database model: Theorem 4.
  Workload w = MakeBankingWorkload();
  LevelCheckReport r = Check(w, "Withdraw_sav", IsoLevel::kRepeatableRead);
  EXPECT_TRUE(r.correct);
  EXPECT_EQ(r.triples_checked, 0);  // Thm 4 needs no obligations
}

TEST(BankingTheorems, WithdrawPairFailsSnapshot) {
  // Write skew: Withdraw_ch interferes with Withdraw_sav's read step and
  // their write sets are disjoint.
  Workload w = MakeBankingWorkload();
  LevelCheckReport r = Check(w, "Withdraw_sav", IsoLevel::kSnapshot);
  EXPECT_FALSE(r.correct);
  const Obligation* failure = r.FirstFailure();
  ASSERT_NE(failure, nullptr);
  EXPECT_NE(failure->source.find("Withdraw_ch"), std::string::npos);
}

TEST(BankingTheorems, SameTypeSnapshotPairExcusedByWriteSets) {
  // Two Withdraw_sav instances intersect in write sets: FCW aborts one
  // (the paper's condition (1)).
  Workload w = MakeBankingWorkload();
  LevelCheckReport r = Check(w, "Withdraw_sav", IsoLevel::kSnapshot);
  bool excused_same_type = false;
  for (const Obligation& o : r.obligations) {
    if (o.excused && o.source.find("Withdraw_sav") != std::string::npos) {
      excused_same_type = true;
    }
  }
  EXPECT_TRUE(excused_same_type);
}

TEST(BankingTheorems, DepositDoesNotBreakWithdrawReadStep) {
  // Deposits only increase balances: no snapshot-pair failure between
  // Withdraw_sav and Deposit_ch (disjoint writes, monotone interference).
  Workload w = MakeBankingWorkload();
  LevelCheckReport r = Check(w, "Withdraw_sav", IsoLevel::kSnapshot);
  for (const Obligation& o : r.obligations) {
    if (o.source.find("Deposit_ch") != std::string::npos) {
      EXPECT_TRUE(o.Passed()) << o.result.detail;
    }
  }
}

TEST(BankingTheorems, EverythingCorrectAtSerializable) {
  Workload w = MakeBankingWorkload();
  for (const char* type :
       {"Withdraw_sav", "Withdraw_ch", "Deposit_sav", "Deposit_ch"}) {
    EXPECT_TRUE(Check(w, type, IsoLevel::kSerializable).correct) << type;
  }
}

// ---- payroll (Example 2) ----

TEST(PayrollTheorems, PrintRecordsFailsReadUncommitted) {
  // Hours' individual writes break I_sal: dirty readers see half-updates.
  Workload w = MakePayrollWorkload();
  LevelCheckReport r = Check(w, "Print_Records", IsoLevel::kReadUncommitted);
  EXPECT_FALSE(r.correct);
  const Obligation* failure = r.FirstFailure();
  ASSERT_NE(failure, nullptr);
  EXPECT_NE(failure->source.find("Hours"), std::string::npos);
}

TEST(PayrollTheorems, PrintRecordsCorrectAtReadCommitted) {
  // Hours as an atomic unit preserves I_sal (the two updates compose).
  Workload w = MakePayrollWorkload();
  LevelCheckReport r = Check(w, "Print_Records", IsoLevel::kReadCommitted);
  EXPECT_TRUE(r.correct) << (r.FirstFailure() != nullptr
                                 ? r.FirstFailure()->result.detail
                                 : "");
}

TEST(PayrollTheorems, HoursFailsReadUncommitted) {
  Workload w = MakePayrollWorkload();
  EXPECT_FALSE(Check(w, "Hours", IsoLevel::kReadUncommitted).correct);
}

TEST(PayrollTheorems, HoursCorrectAtReadCommitted) {
  Workload w = MakePayrollWorkload();
  LevelCheckReport r = Check(w, "Hours", IsoLevel::kReadCommitted);
  EXPECT_TRUE(r.correct) << (r.FirstFailure() != nullptr
                                 ? r.FirstFailure()->result.detail
                                 : "");
}

// ---- mailing (Examples 1-2) ----

TEST(MailingTheorems, WeakMailingListCorrectAtReadUncommitted) {
  Workload w = MakeMailingWorkload();
  LevelCheckReport r = Check(w, "Mailing_List", IsoLevel::kReadUncommitted);
  EXPECT_TRUE(r.correct) << (r.FirstFailure() != nullptr
                                 ? r.FirstFailure()->result.detail
                                 : "");
}

TEST(MailingTheorems, StrongMailingListFailsReadUncommitted) {
  // The rollback (undo delete) of New_Order_Cust invalidates "the label
  // refers to a customer".
  Workload w = MakeMailingWorkload();
  LevelCheckReport r =
      Check(w, "Mailing_List_Strong", IsoLevel::kReadUncommitted);
  EXPECT_FALSE(r.correct);
  const Obligation* failure = r.FirstFailure();
  ASSERT_NE(failure, nullptr);
  EXPECT_NE(failure->source.find("undo"), std::string::npos)
      << failure->source;
}

TEST(MailingTheorems, StrongMailingListCorrectAtReadCommitted) {
  Workload w = MakeMailingWorkload();
  LevelCheckReport r =
      Check(w, "Mailing_List_Strong", IsoLevel::kReadCommitted);
  EXPECT_TRUE(r.correct) << (r.FirstFailure() != nullptr
                                 ? r.FirstFailure()->result.detail
                                 : "");
}

// ---- §6 orders application ----

class OrdersTheorems : public ::testing::Test {
 protected:
  Workload basic_ = MakeOrdersWorkload(false);
  Workload unique_ = MakeOrdersWorkload(true);
};

TEST_F(OrdersTheorems, MailingListReadUncommitted) {
  EXPECT_TRUE(Check(basic_, "Mailing_List", IsoLevel::kReadUncommitted).correct);
}

TEST_F(OrdersTheorems, NewOrderFailsReadUncommitted) {
  EXPECT_FALSE(Check(basic_, "New_Order", IsoLevel::kReadUncommitted).correct);
}

TEST_F(OrdersTheorems, NewOrderCorrectAtReadCommitted) {
  LevelCheckReport r = Check(basic_, "New_Order", IsoLevel::kReadCommitted);
  EXPECT_TRUE(r.correct) << (r.FirstFailure() != nullptr
                                 ? r.FirstFailure()->assertion + " vs " +
                                       r.FirstFailure()->source + ": " +
                                       r.FirstFailure()->result.detail
                                 : "");
}

TEST_F(OrdersTheorems, UniqueNewOrderFailsReadCommitted) {
  // one_order_per_day: the MAXDATE read needs the equality annotation,
  // which other New_Orders interfere with.
  EXPECT_FALSE(Check(unique_, "New_Order", IsoLevel::kReadCommitted).correct);
}

TEST_F(OrdersTheorems, UniqueNewOrderCorrectWithFirstCommitterWins) {
  LevelCheckReport r =
      Check(unique_, "New_Order", IsoLevel::kReadCommittedFcw);
  EXPECT_TRUE(r.correct) << (r.FirstFailure() != nullptr
                                 ? r.FirstFailure()->assertion + " vs " +
                                       r.FirstFailure()->source + ": " +
                                       r.FirstFailure()->result.detail
                                 : "");
}

TEST_F(OrdersTheorems, DeliveryFailsReadCommitted) {
  // Another Delivery invalidates the SELECT postcondition.
  EXPECT_FALSE(Check(basic_, "Delivery", IsoLevel::kReadCommitted).correct);
}

TEST_F(OrdersTheorems, DeliveryCorrectAtRepeatableReadViaCondition2) {
  LevelCheckReport r = Check(basic_, "Delivery", IsoLevel::kRepeatableRead);
  EXPECT_TRUE(r.correct) << (r.FirstFailure() != nullptr
                                 ? r.FirstFailure()->assertion + " vs " +
                                       r.FirstFailure()->source + ": " +
                                       r.FirstFailure()->result.detail
                                 : "");
  // The self-interference must have been excused by predicate intersection.
  bool excused = false;
  for (const Obligation& o : r.obligations) {
    if (o.excused) excused = true;
  }
  EXPECT_TRUE(excused);
}

TEST_F(OrdersTheorems, AuditFailsRepeatableRead) {
  // New_Order's phantom insert defeats tuple locks (the paper's point).
  LevelCheckReport r = Check(basic_, "Audit", IsoLevel::kRepeatableRead);
  EXPECT_FALSE(r.correct);
}

TEST_F(OrdersTheorems, AuditCorrectAtSerializable) {
  EXPECT_TRUE(Check(basic_, "Audit", IsoLevel::kSerializable).correct);
}

}  // namespace
}  // namespace semcor
