// Property-based tests for the logic engine: random formulas checked
// against brute-force evaluation. These pin down the soundness contracts
// the theorem engines rely on:
//  - Simplify is semantics-preserving,
//  - DNF conversion is equivalence-preserving,
//  - DecideValidity(kValid) formulas are true in every sampled state and
//    kInvalid counterexamples genuinely falsify,
//  - FmProvesUnsat systems have no integer solution in the sampled box,
//  - substitution commutes with evaluation,
//  - proved wp-triples are respected by concrete execution.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sem/check/wp.h"
#include "sem/expr/simplify.h"
#include "sem/expr/subst.h"
#include "sem/logic/decide.h"
#include "sem/logic/dnf.h"
#include "sem/logic/fourier_motzkin.h"
#include "sem/prog/concrete_exec.h"

namespace semcor {
namespace {

const std::vector<std::string> kVars = {"x", "y", "z"};

/// Random integer-valued expression over db vars x, y, z.
Expr RandomIntExpr(Rng* rng, int depth) {
  if (depth <= 0 || rng->Bernoulli(0.35)) {
    if (rng->Bernoulli(0.5)) return Lit(rng->Uniform(-4, 4));
    return DbVar(kVars[rng->Uniform(0, kVars.size() - 1)]);
  }
  Expr a = RandomIntExpr(rng, depth - 1);
  Expr b = RandomIntExpr(rng, depth - 1);
  switch (rng->Uniform(0, 3)) {
    case 0:
      return Add(a, b);
    case 1:
      return Sub(a, b);
    case 2:
      return Neg(a);
    default:
      return Mul(Lit(rng->Uniform(-2, 2)), a);
  }
}

/// Random boolean formula over linear atoms.
Expr RandomBoolExpr(Rng* rng, int depth) {
  if (depth <= 0 || rng->Bernoulli(0.3)) {
    Expr a = RandomIntExpr(rng, 1);
    Expr b = RandomIntExpr(rng, 1);
    switch (rng->Uniform(0, 5)) {
      case 0:
        return Eq(a, b);
      case 1:
        return Ne(a, b);
      case 2:
        return Lt(a, b);
      case 3:
        return Le(a, b);
      case 4:
        return Gt(a, b);
      default:
        return Ge(a, b);
    }
  }
  switch (rng->Uniform(0, 3)) {
    case 0:
      return And(RandomBoolExpr(rng, depth - 1), RandomBoolExpr(rng, depth - 1));
    case 1:
      return Or(RandomBoolExpr(rng, depth - 1), RandomBoolExpr(rng, depth - 1));
    case 2:
      return Not(RandomBoolExpr(rng, depth - 1));
    default:
      return Implies(RandomBoolExpr(rng, depth - 1),
                     RandomBoolExpr(rng, depth - 1));
  }
}

MapEvalContext RandomState(Rng* rng) {
  MapEvalContext ctx;
  for (const std::string& v : kVars) {
    ctx.SetDb(v, Value::Int(rng->Uniform(-6, 6)));
  }
  return ctx;
}

DecideOptions SmallOptions() {
  DecideOptions o;
  o.max_cubes = 512;
  o.witness_bound = 8;
  o.witness_max_nodes = 20000;
  return o;
}

bool EvalDnf(const Dnf& dnf, const MapEvalContext& ctx) {
  for (const Cube& cube : dnf.cubes) {
    bool cube_true = true;
    for (const Literal& lit : cube) {
      Result<bool> v = EvalBool(lit.atom, ctx);
      EXPECT_TRUE(v.ok());
      if (!v.ok() || v.value() == lit.negated) {
        cube_true = false;
        break;
      }
    }
    if (cube_true) return true;
  }
  return false;
}

class FormulaPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FormulaPropertyTest, SimplifyPreservesEvaluation) {
  Rng rng(GetParam());
  for (int round = 0; round < 60; ++round) {
    Expr f = RandomBoolExpr(&rng, 3);
    Expr simplified = Simplify(f);
    for (int s = 0; s < 12; ++s) {
      MapEvalContext ctx = RandomState(&rng);
      Result<bool> a = EvalBool(f, ctx);
      Result<bool> b = EvalBool(simplified, ctx);
      ASSERT_TRUE(a.ok() && b.ok());
      ASSERT_EQ(a.value(), b.value())
          << ToString(f) << "  vs  " << ToString(simplified);
    }
  }
}

TEST_P(FormulaPropertyTest, DnfIsEquivalent) {
  Rng rng(GetParam() + 1);
  for (int round = 0; round < 40; ++round) {
    Expr f = RandomBoolExpr(&rng, 3);
    Result<Dnf> dnf = ToDnf(f, 4096);
    ASSERT_TRUE(dnf.ok());
    for (int s = 0; s < 12; ++s) {
      MapEvalContext ctx = RandomState(&rng);
      Result<bool> direct = EvalBool(f, ctx);
      ASSERT_TRUE(direct.ok());
      ASSERT_EQ(direct.value(), EvalDnf(dnf.value(), ctx)) << ToString(f);
    }
  }
}

TEST_P(FormulaPropertyTest, ValidityVerdictsAreSound) {
  Rng rng(GetParam() + 2);
  for (int round = 0; round < 40; ++round) {
    Expr f = RandomBoolExpr(&rng, 3);
    DecideResult d = DecideValidity(f, SmallOptions());
    if (d.verdict == Verdict::kValid) {
      for (int s = 0; s < 24; ++s) {
        MapEvalContext ctx = RandomState(&rng);
        Result<bool> v = EvalBool(f, ctx);
        ASSERT_TRUE(v.ok());
        ASSERT_TRUE(v.value()) << "kValid falsified: " << ToString(f);
      }
    } else if (d.verdict == Verdict::kInvalid) {
      ASSERT_TRUE(d.counterexample.has_value());
      MapEvalContext ctx;
      for (const std::string& v : kVars) ctx.SetDb(v, Value::Int(0));
      for (const auto& [var, value] : d.counterexample->ints) {
        ctx.Set(var, Value::Int(value));
      }
      Result<bool> v = EvalBool(f, ctx);
      ASSERT_TRUE(v.ok());
      ASSERT_FALSE(v.value())
          << "counterexample does not falsify: " << ToString(f) << " at "
          << d.counterexample->ToString();
    }
  }
}

TEST_P(FormulaPropertyTest, FmUnsatMeansNoBoxedSolution) {
  Rng rng(GetParam() + 3);
  for (int round = 0; round < 60; ++round) {
    // Random small linear system over x, y.
    std::vector<LinearConstraint> cs;
    const int n = static_cast<int>(rng.Uniform(2, 5));
    for (int i = 0; i < n; ++i) {
      LinearConstraint c;
      c.term.coeffs[{VarKind::kDb, "x"}] = rng.Uniform(-3, 3);
      c.term.coeffs[{VarKind::kDb, "y"}] = rng.Uniform(-3, 3);
      c.term.konst = rng.Uniform(-6, 6);
      c.rel = rng.Bernoulli(0.4)   ? LinRel::kEq
              : rng.Bernoulli(0.5) ? LinRel::kLt
                                   : LinRel::kLe;
      cs.push_back(c);
    }
    if (!FmProvesUnsat(cs)) continue;
    // Brute force: no integer point in [-10, 10]^2 may satisfy everything.
    for (int64_t x = -10; x <= 10; ++x) {
      for (int64_t y = -10; y <= 10; ++y) {
        std::map<VarRef, int64_t> a = {{{VarKind::kDb, "x"}, x},
                                       {{VarKind::kDb, "y"}, y}};
        bool all = true;
        for (const LinearConstraint& c : cs) all = all && c.Holds(a);
        ASSERT_FALSE(all) << "FM claimed unsat but (" << x << "," << y
                          << ") satisfies the system";
      }
    }
  }
}

TEST_P(FormulaPropertyTest, SubstitutionCommutesWithEvaluation) {
  Rng rng(GetParam() + 4);
  for (int round = 0; round < 60; ++round) {
    Expr f = RandomBoolExpr(&rng, 3);
    Expr replacement = RandomIntExpr(&rng, 2);
    const VarRef target{VarKind::kDb, "x"};
    Expr substituted = Substitute(f, target, replacement);
    for (int s = 0; s < 8; ++s) {
      MapEvalContext ctx = RandomState(&rng);
      Result<Value> r = Eval(replacement, ctx);
      ASSERT_TRUE(r.ok());
      MapEvalContext bound = ctx;
      bound.Set(target, r.value());
      Result<bool> lhs = EvalBool(substituted, ctx);
      Result<bool> rhs = EvalBool(f, bound);
      ASSERT_TRUE(lhs.ok() && rhs.ok());
      ASSERT_EQ(lhs.value(), rhs.value()) << ToString(f);
    }
  }
}

TEST_P(FormulaPropertyTest, ProvedWpTriplesHoldUnderExecution) {
  Rng rng(GetParam() + 5);
  int proved = 0;
  for (int round = 0; round < 80; ++round) {
    // Random scalar write statement with a random annotation.
    Stmt stmt;
    stmt.kind = StmtKind::kWrite;
    stmt.item = kVars[rng.Uniform(0, kVars.size() - 1)];
    stmt.expr = RandomIntExpr(&rng, 2);
    stmt.pre = RandomBoolExpr(&rng, 2);
    Expr p = RandomBoolExpr(&rng, 2);

    FreshNames fresh;
    Result<WpResult> wp = Wp(stmt, p, &fresh);
    ASSERT_TRUE(wp.ok());
    const Expr triple = Implies(And(p, stmt.pre), wp.value().formula);
    if (DecideValidity(Simplify(triple), SmallOptions()).verdict !=
        Verdict::kValid) {
      continue;
    }
    ++proved;
    // Any state satisfying P ∧ pre must still satisfy P after the write.
    for (int s = 0; s < 30; ++s) {
      MapEvalContext ctx = RandomState(&rng);
      Result<bool> before = EvalBool(And(p, stmt.pre), ctx);
      ASSERT_TRUE(before.ok());
      if (!before.value()) continue;
      std::map<std::string, std::vector<Tuple>> buffers;
      ASSERT_TRUE(ExecuteStmt(stmt, &ctx, &buffers).ok());
      Result<bool> after = EvalBool(p, ctx);
      ASSERT_TRUE(after.ok());
      ASSERT_TRUE(after.value())
          << "proved triple violated: {" << ToString(And(p, stmt.pre)) << "} "
          << stmt.ToString() << " {" << ToString(p) << "}";
    }
  }
  // The generator must produce a healthy number of provable triples for the
  // property to mean anything.
  EXPECT_GT(proved, 5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormulaPropertyTest,
                         ::testing::Values(11, 222, 3333, 44444));

}  // namespace
}  // namespace semcor
