#include <gtest/gtest.h>

#include "sem/logic/decide.h"
#include "sem/logic/dnf.h"
#include "sem/logic/fourier_motzkin.h"
#include "sem/logic/linear.h"

namespace semcor {
namespace {

Expr X() { return DbVar("x"); }
Expr Y() { return DbVar("y"); }
Expr Z() { return DbVar("z"); }

// ---- linear extraction ----

TEST(LinearTest, ExtractsLinearCombination) {
  TermAbstraction abs;
  auto t = ToLinear(Add(Mul(Lit(int64_t{3}), X()), Sub(Y(), Lit(int64_t{7}))),
                    &abs);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->konst, -7);
  EXPECT_EQ(t->coeffs.at({VarKind::kDb, "x"}), 3);
  EXPECT_EQ(t->coeffs.at({VarKind::kDb, "y"}), 1);
  EXPECT_TRUE(abs.terms().empty());
}

TEST(LinearTest, CancelsCoefficients) {
  TermAbstraction abs;
  auto t = ToLinear(Sub(X(), X()), &abs);
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(t->IsConstant());
  EXPECT_EQ(t->konst, 0);
}

TEST(LinearTest, AbstractsNonLinearTerms) {
  TermAbstraction abs;
  auto t = ToLinear(Mul(X(), Y()), &abs);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(abs.terms().size(), 1u);
  // The same term maps to the same abstraction variable.
  auto t2 = ToLinear(Mul(X(), Y()), &abs);
  ASSERT_TRUE(t2.has_value());
  EXPECT_EQ(abs.terms().size(), 1u);
  EXPECT_EQ(t->coeffs.begin()->first, t2->coeffs.begin()->first);
}

TEST(LinearTest, AbstractsAggregates) {
  TermAbstraction abs;
  auto t = ToLinear(Count("T", True()), &abs);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(abs.terms().size(), 1u);
}

TEST(LinearTest, NonIntegerYieldsNullopt) {
  TermAbstraction abs;
  EXPECT_FALSE(ToLinear(Lit(std::string("s")), &abs).has_value());
  EXPECT_FALSE(ToLinear(Lit(true), &abs).has_value());
}

TEST(LinearTest, AtomToConstraintsSplitsNe) {
  TermAbstraction abs;
  auto alts = AtomToConstraints(Ne(X(), Lit(int64_t{3})), false, &abs);
  ASSERT_TRUE(alts.has_value());
  EXPECT_EQ(alts->size(), 2u);  // x < 3 OR x > 3
}

TEST(LinearTest, NegationFlipsOperator) {
  TermAbstraction abs;
  auto alts = AtomToConstraints(Lt(X(), Lit(int64_t{3})), true, &abs);
  ASSERT_TRUE(alts.has_value());
  ASSERT_EQ(alts->size(), 1u);
  // !(x < 3) == x >= 3 == 3 - x <= 0.
  std::map<VarRef, int64_t> sat = {{{VarKind::kDb, "x"}, 3}};
  std::map<VarRef, int64_t> unsat = {{{VarKind::kDb, "x"}, 2}};
  EXPECT_TRUE((*alts)[0][0].Holds(sat));
  EXPECT_FALSE((*alts)[0][0].Holds(unsat));
}

// ---- DNF ----

TEST(DnfTest, DistributesOrOverAnd) {
  Expr p = Gt(X(), Lit(int64_t{0}));
  Expr q = Gt(Y(), Lit(int64_t{0}));
  Expr r = Gt(Z(), Lit(int64_t{0}));
  Result<Dnf> d = ToDnf(And(Or(p, q), r), 100);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().cubes.size(), 2u);
}

TEST(DnfTest, PushesNegationInward) {
  Expr p = Gt(X(), Lit(int64_t{0}));
  Expr q = Gt(Y(), Lit(int64_t{0}));
  Result<Dnf> d = ToDnf(Not(And(p, q)), 100);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().cubes.size(), 2u);  // !p | !q
  for (const Cube& cube : d.value().cubes) {
    ASSERT_EQ(cube.size(), 1u);
    EXPECT_TRUE(cube[0].negated);
  }
}

TEST(DnfTest, ImpliesExpansion) {
  Expr p = Gt(X(), Lit(int64_t{0}));
  Expr q = Gt(Y(), Lit(int64_t{0}));
  Result<Dnf> d = ToDnf(Not(Implies(p, q)), 100);  // p & !q
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d.value().cubes.size(), 1u);
  EXPECT_EQ(d.value().cubes[0].size(), 2u);
}

TEST(DnfTest, TrueAndFalse) {
  Result<Dnf> t = ToDnf(True(), 10);
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t.value().cubes.size(), 1u);
  EXPECT_TRUE(t.value().cubes[0].empty());
  Result<Dnf> f = ToDnf(False(), 10);
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(f.value().cubes.empty());
}

TEST(DnfTest, BudgetOverflow) {
  // (a1|b1) & (a2|b2) & ... grows exponentially.
  std::vector<Expr> clauses;
  for (int i = 0; i < 20; ++i) {
    clauses.push_back(Or(Gt(DbVar("a" + std::to_string(i)), Lit(int64_t{0})),
                         Gt(DbVar("b" + std::to_string(i)), Lit(int64_t{0}))));
  }
  Result<Dnf> d = ToDnf(And(clauses), 1000);
  EXPECT_FALSE(d.ok());
}

// ---- Fourier-Motzkin ----

LinearConstraint Make(std::map<std::string, int64_t> coeffs, int64_t konst,
                      LinRel rel) {
  LinearConstraint c;
  for (const auto& [name, k] : coeffs) {
    c.term.coeffs[{VarKind::kDb, name}] = k;
  }
  c.term.konst = konst;
  c.rel = rel;
  return c;
}

TEST(FmTest, ProvesSimpleContradiction) {
  // x <= -1 && -x <= -1  (x <= -1 && x >= 1).
  std::vector<LinearConstraint> cs = {Make({{"x", 1}}, 1, LinRel::kLe),
                                      Make({{"x", -1}}, 1, LinRel::kLe)};
  EXPECT_TRUE(FmProvesUnsat(cs));
}

TEST(FmTest, SatisfiableSystemNotProvedUnsat) {
  std::vector<LinearConstraint> cs = {Make({{"x", 1}}, -5, LinRel::kLe),
                                      Make({{"x", -1}}, 0, LinRel::kLe)};
  EXPECT_FALSE(FmProvesUnsat(cs));
}

TEST(FmTest, StrictInequalityChain) {
  // x < y && y < x is unsat.
  std::vector<LinearConstraint> cs = {
      Make({{"x", 1}, {"y", -1}}, 0, LinRel::kLt),
      Make({{"x", -1}, {"y", 1}}, 0, LinRel::kLt)};
  EXPECT_TRUE(FmProvesUnsat(cs));
}

TEST(FmTest, EqualityPropagation) {
  // x == 3 && y == x && y <= 2 is unsat.
  std::vector<LinearConstraint> cs = {
      Make({{"x", 1}}, -3, LinRel::kEq),
      Make({{"y", 1}, {"x", -1}}, 0, LinRel::kEq),
      Make({{"y", 1}}, -2, LinRel::kLe)};
  EXPECT_TRUE(FmProvesUnsat(cs));
}

TEST(FmTest, TransitiveChain) {
  // a <= b <= c <= a-1 is unsat.
  std::vector<LinearConstraint> cs = {
      Make({{"a", 1}, {"b", -1}}, 0, LinRel::kLe),
      Make({{"b", 1}, {"c", -1}}, 0, LinRel::kLe),
      Make({{"c", 1}, {"a", -1}}, 1, LinRel::kLe)};
  EXPECT_TRUE(FmProvesUnsat(cs));
}

TEST(FmTest, IntegerWitnessSearch) {
  // 2 <= x <= 4 && x == y.
  std::vector<LinearConstraint> cs = {
      Make({{"x", -1}}, 2, LinRel::kLe), Make({{"x", 1}}, -4, LinRel::kLe),
      Make({{"x", 1}, {"y", -1}}, 0, LinRel::kEq)};
  std::map<VarRef, int64_t> witness;
  ASSERT_TRUE(FindIntegerWitness(cs, 10, 100000, &witness));
  const int64_t x = witness.at({VarKind::kDb, "x"});
  EXPECT_GE(x, 2);
  EXPECT_LE(x, 4);
  EXPECT_EQ(witness.at({VarKind::kDb, "y"}), x);
}

TEST(FmTest, WitnessRespectsStrictness) {
  // x < 1 && x > -1 => x == 0 over ints.
  std::vector<LinearConstraint> cs = {Make({{"x", 1}}, -1, LinRel::kLt),
                                      Make({{"x", -1}}, -1, LinRel::kLt)};
  std::map<VarRef, int64_t> witness;
  ASSERT_TRUE(FindIntegerWitness(cs, 5, 10000, &witness));
  EXPECT_EQ(witness.at({VarKind::kDb, "x"}), 0);
}

TEST(FmTest, NoWitnessInBox) {
  std::vector<LinearConstraint> cs = {Make({{"x", -1}}, 100, LinRel::kLe)};
  std::map<VarRef, int64_t> witness;
  EXPECT_FALSE(FindIntegerWitness(cs, 5, 10000, &witness));
}

// ---- validity decision ----

TEST(DecideTest, ValidTautology) {
  // x >= 0 => x + 1 >= 1.
  Expr f = Implies(Ge(X(), Lit(int64_t{0})),
                   Ge(Add(X(), Lit(int64_t{1})), Lit(int64_t{1})));
  EXPECT_EQ(DecideValidity(f).verdict, Verdict::kValid);
}

TEST(DecideTest, InvalidWithCounterexample) {
  // x >= 0 => x >= 1 is falsified by x == 0.
  Expr f = Implies(Ge(X(), Lit(int64_t{0})), Ge(X(), Lit(int64_t{1})));
  DecideResult r = DecideValidity(f);
  EXPECT_EQ(r.verdict, Verdict::kInvalid);
  ASSERT_TRUE(r.counterexample.has_value());
  EXPECT_EQ(r.counterexample->ints.at({VarKind::kDb, "x"}), 0);
}

TEST(DecideTest, WithdrawPreservesBalanceInvariant) {
  // The Figure-1 core: sav+ch >= Sav+Ch && Sav+Ch >= w && ch >= Ch
  //   => Sav - w + ch >= 0.
  Expr sav = DbVar("sav"), ch = DbVar("ch");
  Expr Sav = Local("Sav"), Ch = Local("Ch"), w = Local("w");
  Expr f = Implies(And({Ge(Add(sav, ch), Add(Sav, Ch)), Ge(Add(Sav, Ch), w),
                        Ge(ch, Ch)}),
                   Ge(Add(Sub(Sav, w), ch), Lit(int64_t{0})));
  EXPECT_EQ(DecideValidity(f).verdict, Verdict::kValid);
}

TEST(DecideTest, WriteSkewIsInvalid) {
  // Withdraw_ch's write does NOT preserve the other's read-step assertion.
  Expr sav = DbVar("sav"), ch = DbVar("ch");
  Expr f = Implies(
      And({Ge(Add(sav, ch), Add(Local("Sav"), Local("Ch"))),
           Ge(Add(Local("Sav2"), Local("Ch2")), Local("w2")),
           Ge(Local("w2"), Lit(int64_t{1}))}),
      Ge(Add(sav, Sub(Local("Ch2"), Local("w2"))),
         Add(Local("Sav"), Local("Ch"))));
  EXPECT_EQ(DecideValidity(f).verdict, Verdict::kInvalid);
}

TEST(DecideTest, OpaqueComplementaryLiterals) {
  Expr p = Exists("T", Eq(Attr("a"), Lit(int64_t{1})));
  EXPECT_EQ(DecideValidity(Implies(p, p)).verdict, Verdict::kValid);
  EXPECT_EQ(DecideValidity(Or(p, Not(p))).verdict, Verdict::kValid);
}

TEST(DecideTest, AbstractedTermsShareVariables) {
  // count(T|p) > 3 => count(T|p) > 2 holds by abstraction.
  Expr c = Count("T", Eq(Attr("a"), Lit(int64_t{1})));
  Expr f = Implies(Gt(c, Lit(int64_t{3})), Gt(c, Lit(int64_t{2})));
  EXPECT_EQ(DecideValidity(f).verdict, Verdict::kValid);
}

TEST(DecideTest, UnknownForUnprovableOpaque) {
  // Two different counts cannot be related.
  Expr c1 = Count("T", Eq(Attr("a"), Lit(int64_t{1})));
  Expr c2 = Count("T", Eq(Attr("a"), Lit(int64_t{2})));
  Expr f = Implies(Gt(c1, Lit(int64_t{0})), Gt(c2, Lit(int64_t{0})));
  EXPECT_EQ(DecideValidity(f).verdict, Verdict::kUnknown);
}

TEST(DecideTest, ForallSubsumption) {
  // forall(T: v <= x) => forall(T: v <= x+1).
  Expr a = Forall("T", True(), Le(Attr("v"), X()));
  Expr b = Forall("T", True(), Le(Attr("v"), Add(X(), Lit(int64_t{1}))));
  EXPECT_EQ(DecideValidity(Implies(a, b)).verdict, Verdict::kValid);
  // The converse is not derivable.
  EXPECT_NE(DecideValidity(Implies(b, a)).verdict, Verdict::kValid);
}

TEST(DecideTest, ForallSubsumptionWithRestrictedDomain) {
  // forall(T | k==1 : v >= 0) => forall(T | k==1 && v < 5 : v >= -1).
  Expr a = Forall("T", Eq(Attr("k"), Lit(int64_t{1})),
                  Ge(Attr("v"), Lit(int64_t{0})));
  Expr b = Forall("T",
                  And(Eq(Attr("k"), Lit(int64_t{1})),
                      Lt(Attr("v"), Lit(int64_t{5}))),
                  Ge(Attr("v"), Lit(int64_t{-1})));
  EXPECT_EQ(DecideValidity(Implies(a, b)).verdict, Verdict::kValid);
}

TEST(DecideTest, ExistsSubsumption) {
  // exists(T | v > 5) => exists(T | v > 3).
  Expr a = Exists("T", Gt(Attr("v"), Lit(int64_t{5})));
  Expr b = Exists("T", Gt(Attr("v"), Lit(int64_t{3})));
  EXPECT_EQ(DecideValidity(Implies(a, b)).verdict, Verdict::kValid);
  EXPECT_NE(DecideValidity(Implies(b, a)).verdict, Verdict::kValid);
}

TEST(DecideTest, ProvablyUnsat) {
  EXPECT_TRUE(ProvablyUnsat(And(Gt(X(), Lit(int64_t{3})),
                                Lt(X(), Lit(int64_t{2})))));
  EXPECT_FALSE(ProvablyUnsat(Gt(X(), Lit(int64_t{3}))));
  // Intersection of tuple predicates (predicate-lock conflicts).
  EXPECT_TRUE(ProvablyUnsat(And(Eq(Attr("d"), Lit(int64_t{1})),
                                Eq(Attr("d"), Lit(int64_t{2})))));
  EXPECT_FALSE(ProvablyUnsat(And(Eq(Attr("d"), Lit(int64_t{1})),
                                 Eq(Attr("c"), Lit(int64_t{2})))));
}

TEST(DecideTest, ProvablySat) {
  std::map<VarRef, int64_t> witness;
  EXPECT_TRUE(ProvablySat(And(Gt(X(), Lit(int64_t{2})), Lt(X(), Lit(int64_t{4}))),
                          &witness));
  EXPECT_EQ(witness.at({VarKind::kDb, "x"}), 3);
}

// Parameterized validity sweep: x >= k => x >= k-1 for many k.
class MonotoneShiftTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(MonotoneShiftTest, WeakeningIsValid) {
  const int64_t k = GetParam();
  Expr f = Implies(Ge(X(), Lit(k)), Ge(X(), Lit(k - 1)));
  EXPECT_EQ(DecideValidity(f).verdict, Verdict::kValid);
  Expr g = Implies(Ge(X(), Lit(k)), Ge(X(), Lit(k + 1)));
  EXPECT_EQ(DecideValidity(g).verdict, Verdict::kInvalid);
}

INSTANTIATE_TEST_SUITE_P(Shifts, MonotoneShiftTest,
                         ::testing::Values(-7, -1, 0, 1, 5, 12));

}  // namespace
}  // namespace semcor
