// Tests for src/wal/faulty_device.* and the WAL's reaction to device
// failures: deterministic fault schedules, append errors freezing the log
// (an acked commit must never depend on bytes past a write error), and the
// two fsync-failure policies — panic (fsyncgate semantics: never
// retry-and-pretend) versus degrade-to-unsafe (keep serving, stop claiming
// durability). Every crash scenario is checked against recovery of the
// inner device's actual bytes, so the oracle is the real redo path.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "lock/lock_manager.h"
#include "storage/store.h"
#include "txn/txn.h"
#include "wal/device.h"
#include "wal/faulty_device.h"
#include "wal/wal.h"

namespace semcor {
namespace {

using wal::DiskFaultKind;
using wal::DiskFaultPlan;
using wal::DiskFaultStats;
using wal::DiskOp;
using wal::FaultyDevice;
using wal::FsyncFailurePolicy;
using wal::MemDevice;
using wal::RecoveryResult;
using wal::ScriptedDiskFault;
using wal::WalOptions;
using wal::WriteAheadLog;

// ---------------------------------------------------------------------------
// Plan parsing.
// ---------------------------------------------------------------------------

TEST(DiskFaultPlanTest, ParseSpecs) {
  DiskFaultPlan plan;
  EXPECT_TRUE(ParseDiskFaultPlan("none", &plan));
  EXPECT_TRUE(plan.empty());
  EXPECT_TRUE(ParseDiskFaultPlan("", &plan));
  EXPECT_TRUE(plan.empty());

  ASSERT_TRUE(ParseDiskFaultPlan("seed:7", &plan));
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_FALSE(plan.empty());
  EXPECT_GT(plan.p_sync_fail, 0);  // default plan leans on the policy site

  ASSERT_TRUE(ParseDiskFaultPlan("seed:9:0.5:0.25:0.125", &plan));
  EXPECT_EQ(plan.seed, 9u);
  EXPECT_DOUBLE_EQ(plan.p_append_eio, 0.5);
  EXPECT_DOUBLE_EQ(plan.p_short_write, 0.25);
  EXPECT_DOUBLE_EQ(plan.p_sync_fail, 0.125);

  EXPECT_FALSE(ParseDiskFaultPlan("bogus", &plan));
  EXPECT_FALSE(ParseDiskFaultPlan("seed:", &plan));
  EXPECT_FALSE(ParseDiskFaultPlan("seed:x", &plan));
  EXPECT_FALSE(ParseDiskFaultPlan("seed:1:nope", &plan));
}

// ---------------------------------------------------------------------------
// Deterministic injection.
// ---------------------------------------------------------------------------

/// Runs `appends` appends and `syncs` syncs, returning which ordinals failed
/// — the fault schedule fingerprint for a plan.
std::vector<int> FaultFingerprint(const DiskFaultPlan& plan, int appends,
                                  int syncs) {
  FaultyDevice dev(std::make_unique<MemDevice>(), plan);
  std::vector<int> failed;
  for (int i = 0; i < appends; ++i) {
    if (!dev.Append("0123456789abcdef").ok()) failed.push_back(i);
  }
  for (int i = 0; i < syncs; ++i) {
    if (!dev.Sync().ok()) failed.push_back(appends + i);
  }
  return failed;
}

TEST(FaultyDeviceTest, SameSeedSameSchedule) {
  const DiskFaultPlan plan = DiskFaultPlan::Seeded(42, 0.2, 0.1, 0.3);
  const std::vector<int> a = FaultFingerprint(plan, 200, 100);
  const std::vector<int> b = FaultFingerprint(plan, 200, 100);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());  // those probabilities must fire over 300 draws

  DiskFaultPlan other = plan;
  other.seed = 43;
  EXPECT_NE(FaultFingerprint(other, 200, 100), a);
}

TEST(FaultyDeviceTest, ScriptedShortWriteLeavesGenuinelyTornBytes) {
  DiskFaultPlan plan;
  plan.script = {{DiskOp::kAppend, 3, DiskFaultKind::kShortWrite}};
  FaultyDevice dev(std::make_unique<MemDevice>(), plan);

  EXPECT_TRUE(dev.Append("aaaaaaaa").ok());
  EXPECT_TRUE(dev.Append("bbbbbbbb").ok());
  const Status torn = dev.Append("cccccccc");
  EXPECT_FALSE(torn.ok());
  // The short write really lands a prefix on the inner device — recovery
  // sees a torn tail, not a simulation flag.
  EXPECT_EQ(dev.inner()->Size(), 8u + 8u + 4u);

  const DiskFaultStats stats = dev.stats();
  EXPECT_EQ(stats.injected, 1);
  EXPECT_EQ(stats.short_writes, 1);
}

// ---------------------------------------------------------------------------
// WAL behaviour under device failures.
// ---------------------------------------------------------------------------

struct World {
  Store store;
  LockManager locks;
  TxnManager mgr{&store, &locks};

  World() {
    EXPECT_TRUE(store.CreateItem("x", Value::Int(0)).ok());
    EXPECT_TRUE(store.CreateItem("y", Value::Int(0)).ok());
  }
};

/// One single-item write transaction driven to commit; returns the durable
/// ack flag.
bool CommitWrite(TxnManager* mgr, const std::string& item, int64_t v) {
  std::unique_ptr<Txn> txn = mgr->Begin(IsoLevel::kSerializable);
  EXPECT_TRUE(mgr->WriteItem(txn.get(), item, Value::Int(v), true).ok());
  EXPECT_TRUE(mgr->Commit(txn.get()).ok());
  return txn->durable;
}

int64_t ItemValue(const Store& store, const std::string& name) {
  Result<Value> v = store.ReadItemCommitted(name);
  EXPECT_TRUE(v.ok());
  return v.value().AsInt();
}

/// Builds a WAL over a FaultyDevice wrapping a MemDevice; *mem gets the
/// inner device so tests can run recovery over the bytes that really landed.
std::unique_ptr<WriteAheadLog> MakeFaultyWal(World* world,
                                             const DiskFaultPlan& plan,
                                             FsyncFailurePolicy policy,
                                             MemDevice** mem) {
  auto inner = std::make_unique<MemDevice>();
  *mem = inner.get();
  auto faulty = std::make_unique<FaultyDevice>(std::move(inner), plan);
  WalOptions opts;
  opts.fsync = wal::FsyncPolicy::kPerCommit;
  opts.fsync_failure = policy;
  auto w = std::make_unique<WriteAheadLog>(std::move(faulty), &world->store,
                                           opts);
  world->mgr.SetWal(w.get());
  return w;
}

TEST(WalDiskFaultTest, AppendErrorFreezesLogRegardlessOfPolicy) {
  // Policy is degrade — but append failures must STILL freeze: a torn frame
  // mid-log would silently truncate recovery at the hole, so no later
  // record may be acked.
  World world;
  MemDevice* mem = nullptr;
  DiskFaultPlan plan;
  // Each commit appends begin+write+commit; visit 5 is txn 2's write record.
  plan.script = {{DiskOp::kAppend, 5, DiskFaultKind::kEio}};
  auto w = MakeFaultyWal(&world, plan, FsyncFailurePolicy::kDegradeToUnsafe,
                         &mem);

  EXPECT_TRUE(CommitWrite(&world.mgr, "x", 1));    // before the fault: acked
  EXPECT_FALSE(CommitWrite(&world.mgr, "x", 2));   // hits the fault: refused
  EXPECT_FALSE(CommitWrite(&world.mgr, "y", 3));   // frozen: still refused
  EXPECT_TRUE(w->crashed());
  EXPECT_TRUE(w->panicked());
  EXPECT_FALSE(w->device_error().ok());
  EXPECT_GE(w->stats().device_errors, 1u);

  // Oracle: recovery of the real bytes yields exactly the acked prefix.
  World fresh;
  const RecoveryResult rec = wal::RecoverFromBytes(mem->data(), &fresh.store);
  EXPECT_TRUE(rec.status.ok());
  EXPECT_EQ(rec.recovered_commits, 1u);
  EXPECT_EQ(ItemValue(fresh.store, "x"), 1);
  EXPECT_EQ(ItemValue(fresh.store, "y"), 0);

  world.mgr.SetWal(nullptr);
}

TEST(WalDiskFaultTest, FsyncFailurePanicRefusesAcks) {
  World world;
  MemDevice* mem = nullptr;
  DiskFaultPlan plan;
  plan.script = {{DiskOp::kSync, 2, DiskFaultKind::kSyncFail}};
  auto w = MakeFaultyWal(&world, plan, FsyncFailurePolicy::kPanic, &mem);

  EXPECT_TRUE(CommitWrite(&world.mgr, "x", 1));
  // The second commit's fsync fails: never retry-and-pretend — the log
  // freezes and the commit is not acknowledged as durable.
  EXPECT_FALSE(CommitWrite(&world.mgr, "x", 2));
  EXPECT_FALSE(CommitWrite(&world.mgr, "y", 3));
  EXPECT_TRUE(w->panicked());
  EXPECT_FALSE(w->degraded());
  EXPECT_FALSE(w->device_error().ok());

  // The unacked commits' records may or may not be on disk (MemDevice keeps
  // them); the guarantee under test is one-sided — everything ACKED is
  // recoverable. Commit 1 must be.
  World fresh;
  const RecoveryResult rec = wal::RecoverFromBytes(mem->data(), &fresh.store);
  EXPECT_TRUE(rec.status.ok());
  EXPECT_GE(rec.recovered_commits, 1u);
  EXPECT_GE(ItemValue(fresh.store, "x"), 1);

  world.mgr.SetWal(nullptr);
}

TEST(WalDiskFaultTest, FsyncFailureDegradeKeepsServingWithoutClaims) {
  World world;
  MemDevice* mem = nullptr;
  DiskFaultPlan plan;
  plan.script = {{DiskOp::kSync, 1, DiskFaultKind::kSyncFail}};
  auto w = MakeFaultyWal(&world, plan, FsyncFailurePolicy::kDegradeToUnsafe,
                         &mem);

  // Every commit still completes and is "acked" — but the log is degraded,
  // fsyncs stop, and the stats say exactly how many acks were unsafe.
  EXPECT_TRUE(CommitWrite(&world.mgr, "x", 1));
  EXPECT_TRUE(CommitWrite(&world.mgr, "x", 2));
  EXPECT_TRUE(CommitWrite(&world.mgr, "y", 3));
  EXPECT_TRUE(w->degraded());
  EXPECT_FALSE(w->panicked());
  EXPECT_FALSE(w->crashed());
  const wal::WalStats stats = w->stats();
  EXPECT_GE(stats.unsafe_acks, 3u);
  EXPECT_GE(stats.fsyncs_skipped, 2u);

  // Appends continued, so the bytes are all present (this device "failed"
  // only the fsync): replay still works — the degradation is about what
  // was PROMISED, not what happened to land.
  World fresh;
  const RecoveryResult rec = wal::RecoverFromBytes(mem->data(), &fresh.store);
  EXPECT_TRUE(rec.status.ok());
  EXPECT_EQ(rec.recovered_commits, 3u);
  EXPECT_EQ(ItemValue(fresh.store, "x"), 2);
  EXPECT_EQ(ItemValue(fresh.store, "y"), 3);

  world.mgr.SetWal(nullptr);
}

TEST(WalDiskFaultTest, SeededSoakAckedPrefixAlwaysRecovers) {
  // The acceptance property, in miniature: across seeds, run commits until
  // the log freezes (or 60 commits pass), then recover the real bytes and
  // check every acked commit is present. Short writes leave genuinely torn
  // tails; recovery must shrug them off.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    World world;
    MemDevice* mem = nullptr;
    const DiskFaultPlan plan = DiskFaultPlan::Seeded(seed, 0.05, 0.05, 0.05);
    auto w = MakeFaultyWal(&world, plan, FsyncFailurePolicy::kPanic, &mem);

    int64_t last_acked = 0;
    for (int64_t v = 1; v <= 60; ++v) {
      if (CommitWrite(&world.mgr, "x", v)) {
        EXPECT_EQ(last_acked, v - 1) << "ack after a refused ack, seed "
                                     << seed;
        last_acked = v;
      } else {
        break;  // first refusal freezes the log under panic
      }
    }

    World fresh;
    const RecoveryResult rec =
        wal::RecoverFromBytes(mem->data(), &fresh.store);
    EXPECT_TRUE(rec.status.ok()) << rec.status.ToString();
    EXPECT_GE(ItemValue(fresh.store, "x"), last_acked) << "seed " << seed;

    world.mgr.SetWal(nullptr);
  }
}

TEST(WalDiskFaultTest, ReplayFailureSurfacesAsRecoveryError) {
  // Satellite: a log whose committed transaction cannot be replayed must
  // fail recovery loudly (serverd exits non-zero), not serve a store that
  // silently dropped an acked commit. Craft a commit whose effects target a
  // table that does not exist in the recovering store.
  std::string log;
  wal::Record begin;
  begin.lsn = 1;
  begin.type = wal::RecordType::kBegin;
  begin.body = wal::BeginBody{1, 0};
  log += wal::EncodeRecord(begin);
  wal::Record commit;
  commit.lsn = 2;
  commit.type = wal::RecordType::kCommit;
  wal::CommitBody body;
  body.txn = 1;
  body.commit_ts = 1;
  body.effects.rows.push_back({"no_such_table", 1, Tuple{}});
  commit.body = std::move(body);
  log += wal::EncodeRecord(commit);

  Store store;
  const RecoveryResult rec = wal::RecoverFromBytes(log, &store);
  EXPECT_FALSE(rec.status.ok());
  EXPECT_NE(rec.status.ToString().find("replay"), std::string::npos);
}

}  // namespace
}  // namespace semcor
