#include <gtest/gtest.h>

#include "sem/check/advisor.h"
#include "workload/workload.h"

namespace semcor {
namespace {

/// The headline reproduction (experiment E2): for every transaction type of
/// every paper workload, the §5 procedure must return exactly the level the
/// paper assigns.
struct AdvisorCase {
  const char* workload;
  const char* type;
  IsoLevel expected;
};

Workload MakeByName(const std::string& name) {
  if (name == "banking") return MakeBankingWorkload();
  if (name == "payroll") return MakePayrollWorkload();
  if (name == "mailing") return MakeMailingWorkload();
  if (name == "orders") return MakeOrdersWorkload(false);
  if (name == "orders_unique") return MakeOrdersWorkload(true);
  return MakeTpccWorkload();
}

class AdvisorLevelTest : public ::testing::TestWithParam<AdvisorCase> {};

TEST_P(AdvisorLevelTest, RecommendsPaperLevel) {
  const AdvisorCase& c = GetParam();
  Workload w = MakeByName(c.workload);
  LevelAdvisor advisor(w.app, AdvisorOptions());
  LevelAdvice advice = advisor.Advise(c.type);
  EXPECT_EQ(advice.recommended, c.expected)
      << c.workload << "/" << c.type << ": got "
      << IsoLevelName(advice.recommended);
}

INSTANTIATE_TEST_SUITE_P(
    PaperTable, AdvisorLevelTest,
    ::testing::Values(
        // §6 application (Figures 2-5).
        AdvisorCase{"orders", "Mailing_List", IsoLevel::kReadUncommitted},
        AdvisorCase{"orders", "New_Order", IsoLevel::kReadCommitted},
        AdvisorCase{"orders", "Delivery", IsoLevel::kRepeatableRead},
        AdvisorCase{"orders", "Audit", IsoLevel::kSerializable},
        // one-order-per-day variant (§6): FCW becomes necessary.
        AdvisorCase{"orders_unique", "New_Order",
                    IsoLevel::kReadCommittedFcw},
        // Examples 1-2.
        AdvisorCase{"mailing", "Mailing_List", IsoLevel::kReadUncommitted},
        AdvisorCase{"mailing", "Mailing_List_Strong",
                    IsoLevel::kReadCommitted},
        AdvisorCase{"mailing", "New_Order_Cust", IsoLevel::kReadCommitted},
        AdvisorCase{"payroll", "Hours", IsoLevel::kReadCommitted},
        AdvisorCase{"payroll", "Print_Records", IsoLevel::kReadCommitted},
        // Example 3 (conventional model: Theorem 4 at RR).
        AdvisorCase{"banking", "Withdraw_sav", IsoLevel::kRepeatableRead},
        AdvisorCase{"banking", "Withdraw_ch", IsoLevel::kRepeatableRead},
        AdvisorCase{"banking", "Deposit_sav", IsoLevel::kRepeatableRead},
        // TPC-C-lite (the paper's §7 future work).
        AdvisorCase{"tpcc", "TOrderStatus", IsoLevel::kReadUncommitted},
        AdvisorCase{"tpcc", "TStockLevel", IsoLevel::kReadUncommitted},
        AdvisorCase{"tpcc", "TPayment", IsoLevel::kReadCommittedFcw},
        AdvisorCase{"tpcc", "TNewOrder", IsoLevel::kReadCommittedFcw},
        AdvisorCase{"tpcc", "TDelivery", IsoLevel::kRepeatableRead}));

TEST(AdvisorTest, SnapshotAnalysisForBanking) {
  Workload w = MakeBankingWorkload();
  LevelAdvisor advisor(w.app, AdvisorOptions());
  // The Withdraw pair exhibits write skew: snapshot is not correct.
  EXPECT_FALSE(advisor.Advise("Withdraw_sav").snapshot_correct);
  EXPECT_FALSE(advisor.Advise("Withdraw_ch").snapshot_correct);
}

TEST(AdvisorTest, SnapshotCorrectForReadOnlyWeakSpec) {
  Workload w = MakeOrdersWorkload(false);
  LevelAdvisor advisor(w.app, AdvisorOptions());
  EXPECT_TRUE(advisor.Advise("Mailing_List").snapshot_correct);
}

TEST(AdvisorTest, AdviceMatchesWorkloadPaperLevels) {
  for (const char* name : {"banking", "payroll", "mailing", "orders",
                           "orders_unique", "tpcc"}) {
    Workload w = MakeByName(name);
    LevelAdvisor advisor(w.app, AdvisorOptions());
    for (const auto& [type, level] : w.paper_levels) {
      LevelAdvice advice = advisor.Advise(type);
      EXPECT_EQ(advice.recommended, level)
          << name << "/" << type << ": advisor says "
          << IsoLevelName(advice.recommended) << ", paper says "
          << IsoLevelName(level);
    }
  }
}

TEST(AdvisorTest, AdviseAllCoversEveryType) {
  Workload w = MakeOrdersWorkload(false);
  LevelAdvisor advisor(w.app, AdvisorOptions());
  std::vector<LevelAdvice> all = advisor.AdviseAll();
  EXPECT_EQ(all.size(), w.app.types.size());
  std::string table = RenderAdviceTable(all);
  EXPECT_NE(table.find("Mailing_List"), std::string::npos);
  EXPECT_NE(table.find("SERIALIZABLE"), std::string::npos);
}

TEST(AdvisorTest, FcwCanBeDisabled) {
  Workload w = MakeOrdersWorkload(true);
  AdvisorOptions options;
  options.consider_fcw = false;
  LevelAdvisor advisor(w.app, options);
  // Without the FCW rung, unique New_Order climbs to a stronger level.
  LevelAdvice advice = advisor.Advise("New_Order");
  EXPECT_NE(advice.recommended, IsoLevel::kReadCommittedFcw);
  EXPECT_NE(advice.recommended, IsoLevel::kReadCommitted);
}

}  // namespace
}  // namespace semcor
