#include <gtest/gtest.h>

#include "sem/check/advisor.h"
#include "workload/workload.h"

namespace semcor {
namespace {

/// The headline reproduction (experiment E2): for every transaction type of
/// every paper workload, the §5 procedure must return exactly the level the
/// paper assigns.
struct AdvisorCase {
  const char* workload;
  const char* type;
  IsoLevel expected;
};

Workload MakeByName(const std::string& name) {
  if (name == "banking") return MakeBankingWorkload();
  if (name == "payroll") return MakePayrollWorkload();
  if (name == "mailing") return MakeMailingWorkload();
  if (name == "orders") return MakeOrdersWorkload(false);
  if (name == "orders_unique") return MakeOrdersWorkload(true);
  return MakeTpccWorkload();
}

class AdvisorLevelTest : public ::testing::TestWithParam<AdvisorCase> {};

TEST_P(AdvisorLevelTest, RecommendsPaperLevel) {
  const AdvisorCase& c = GetParam();
  Workload w = MakeByName(c.workload);
  LevelAdvisor advisor(w.app, AdvisorOptions());
  LevelAdvice advice = advisor.Advise(c.type);
  EXPECT_EQ(advice.recommended, c.expected)
      << c.workload << "/" << c.type << ": got "
      << IsoLevelName(advice.recommended);
}

INSTANTIATE_TEST_SUITE_P(
    PaperTable, AdvisorLevelTest,
    ::testing::Values(
        // §6 application (Figures 2-5).
        AdvisorCase{"orders", "Mailing_List", IsoLevel::kReadUncommitted},
        AdvisorCase{"orders", "New_Order", IsoLevel::kReadCommitted},
        AdvisorCase{"orders", "Delivery", IsoLevel::kRepeatableRead},
        AdvisorCase{"orders", "Audit", IsoLevel::kSerializable},
        // one-order-per-day variant (§6): FCW becomes necessary.
        AdvisorCase{"orders_unique", "New_Order",
                    IsoLevel::kReadCommittedFcw},
        // Examples 1-2.
        AdvisorCase{"mailing", "Mailing_List", IsoLevel::kReadUncommitted},
        AdvisorCase{"mailing", "Mailing_List_Strong",
                    IsoLevel::kReadCommitted},
        AdvisorCase{"mailing", "New_Order_Cust", IsoLevel::kReadCommitted},
        AdvisorCase{"payroll", "Hours", IsoLevel::kReadCommitted},
        AdvisorCase{"payroll", "Print_Records", IsoLevel::kReadCommitted},
        // Example 3 (conventional model: Theorem 4 at RR).
        AdvisorCase{"banking", "Withdraw_sav", IsoLevel::kRepeatableRead},
        AdvisorCase{"banking", "Withdraw_ch", IsoLevel::kRepeatableRead},
        AdvisorCase{"banking", "Deposit_sav", IsoLevel::kRepeatableRead},
        // TPC-C-lite (the paper's §7 future work).
        AdvisorCase{"tpcc", "TOrderStatus", IsoLevel::kReadUncommitted},
        AdvisorCase{"tpcc", "TStockLevel", IsoLevel::kReadUncommitted},
        AdvisorCase{"tpcc", "TPayment", IsoLevel::kReadCommittedFcw},
        AdvisorCase{"tpcc", "TNewOrder", IsoLevel::kReadCommittedFcw},
        AdvisorCase{"tpcc", "TDelivery", IsoLevel::kRepeatableRead}));

TEST(AdvisorTest, SnapshotAnalysisForBanking) {
  Workload w = MakeBankingWorkload();
  LevelAdvisor advisor(w.app, AdvisorOptions());
  // The Withdraw pair exhibits write skew: snapshot is not correct.
  EXPECT_FALSE(advisor.Advise("Withdraw_sav").snapshot_correct);
  EXPECT_FALSE(advisor.Advise("Withdraw_ch").snapshot_correct);
}

TEST(AdvisorTest, SnapshotCorrectForReadOnlyWeakSpec) {
  Workload w = MakeOrdersWorkload(false);
  LevelAdvisor advisor(w.app, AdvisorOptions());
  EXPECT_TRUE(advisor.Advise("Mailing_List").snapshot_correct);
}

TEST(AdvisorTest, AdviceMatchesWorkloadPaperLevels) {
  for (const char* name : {"banking", "payroll", "mailing", "orders",
                           "orders_unique", "tpcc"}) {
    Workload w = MakeByName(name);
    LevelAdvisor advisor(w.app, AdvisorOptions());
    for (const auto& [type, level] : w.paper_levels) {
      LevelAdvice advice = advisor.Advise(type);
      EXPECT_EQ(advice.recommended, level)
          << name << "/" << type << ": advisor says "
          << IsoLevelName(advice.recommended) << ", paper says "
          << IsoLevelName(level);
    }
  }
}

TEST(AdvisorTest, AdviseAllCoversEveryType) {
  Workload w = MakeOrdersWorkload(false);
  LevelAdvisor advisor(w.app, AdvisorOptions());
  std::vector<LevelAdvice> all = advisor.AdviseAll();
  EXPECT_EQ(all.size(), w.app.types.size());
  std::string table = RenderAdviceTable(all);
  EXPECT_NE(table.find("Mailing_List"), std::string::npos);
  EXPECT_NE(table.find("SERIALIZABLE"), std::string::npos);
}

TEST(AdvisorTest, FcwCanBeDisabled) {
  Workload w = MakeOrdersWorkload(true);
  AdvisorOptions options;
  options.consider_fcw = false;
  LevelAdvisor advisor(w.app, options);
  // Without the FCW rung, unique New_Order climbs to a stronger level.
  LevelAdvice advice = advisor.Advise("New_Order");
  EXPECT_NE(advice.recommended, IsoLevel::kReadCommittedFcw);
  EXPECT_NE(advice.recommended, IsoLevel::kReadCommitted);
}

// CorrectAt edge cases: the ladder walk stops at the first correct rung, so
// everything below it must come from the recorded reports, everything at or
// above it from monotonicity, and SNAPSHOT from its own Theorem 5 report —
// never from the ladder's ordering.
TEST(AdvisorTest, CorrectAtUsesReportsBelowTheRecommendation) {
  Workload w = MakeBankingWorkload(2);
  LevelAdvisor advisor(w.app, AdvisorOptions());
  LevelAdvice advice = advisor.Advise("Withdraw_sav");
  ASSERT_EQ(advice.recommended, IsoLevel::kRepeatableRead);
  // Every rung below the recommendation was evaluated and rejected.
  EXPECT_FALSE(advice.CorrectAt(IsoLevel::kReadUncommitted));
  EXPECT_FALSE(advice.CorrectAt(IsoLevel::kReadCommitted));
  EXPECT_FALSE(advice.CorrectAt(IsoLevel::kReadCommittedFcw));
  // The recommendation itself has a report saying correct.
  EXPECT_TRUE(advice.CorrectAt(IsoLevel::kRepeatableRead));
  // SERIALIZABLE was never checked (the walk stopped at RR); monotonicity
  // answers it.
  bool has_ser_report = false;
  for (const LevelCheckReport& r : advice.reports) {
    if (r.level == IsoLevel::kSerializable) has_ser_report = true;
  }
  EXPECT_FALSE(has_ser_report);
  EXPECT_TRUE(advice.CorrectAt(IsoLevel::kSerializable));
}

TEST(AdvisorTest, CorrectAtSnapshotIsIndependentOfTheLadder) {
  // Banking's Withdraw pair exhibits write skew: RR is recommended, yet
  // SNAPSHOT is *not* correct even though it enumerates above RR. A naive
  // "level >= recommended" fallback would get this wrong.
  Workload w = MakeBankingWorkload(2);
  LevelAdvisor advisor(w.app, AdvisorOptions());
  LevelAdvice advice = advisor.Advise("Withdraw_sav");
  ASSERT_EQ(advice.recommended, IsoLevel::kRepeatableRead);
  EXPECT_FALSE(advice.snapshot_correct);
  EXPECT_FALSE(advice.CorrectAt(IsoLevel::kSnapshot));
  EXPECT_TRUE(advice.CorrectAt(IsoLevel::kSerializable));

  // And a synthetic advice decouples them completely: SNAPSHOT correct
  // while even SERIALIZABLE's report is absent.
  LevelAdvice synthetic;
  synthetic.txn_type = "synthetic";
  synthetic.recommended = IsoLevel::kSerializable;
  synthetic.snapshot_correct = true;
  EXPECT_TRUE(synthetic.CorrectAt(IsoLevel::kSnapshot));
  // Unevaluated rungs below the recommendation must not read as ok.
  EXPECT_FALSE(synthetic.CorrectAt(IsoLevel::kReadUncommitted));
}

TEST(AdvisorTest, CorrectAtSkippedFcwRungFallsBackToMonotonicity) {
  // With consider_fcw=false the RC-FCW rung has no report; CorrectAt must
  // answer it from the recommendation's position, not claim correctness
  // below it.
  Workload w = MakeBankingWorkload(2);
  AdvisorOptions options;
  options.consider_fcw = false;
  LevelAdvisor advisor(w.app, options);
  LevelAdvice advice = advisor.Advise("Withdraw_sav");
  ASSERT_EQ(advice.recommended, IsoLevel::kRepeatableRead);
  EXPECT_FALSE(advice.CorrectAt(IsoLevel::kReadCommittedFcw));
}

TEST(AdvisorTest, SummarizeAdviceNamesRejectingTheorems) {
  Workload w = MakeBankingWorkload(2);
  LevelAdvisor advisor(w.app, AdvisorOptions());
  LevelAdvice advice = advisor.Advise("Withdraw_sav");
  const std::string summary = SummarizeAdvice(advice);
  EXPECT_NE(summary.find("lowest correct level = REPEATABLE-READ"),
            std::string::npos);
  // Every rejected rung is named with the governing theorem.
  EXPECT_NE(summary.find("READ-UNCOMMITTED rejected by Thm 1"),
            std::string::npos);
  EXPECT_NE(summary.find("READ-COMMITTED rejected by Thm 2"),
            std::string::npos);
  EXPECT_NE(summary.find("SNAPSHOT unsafe"), std::string::npos);
}

TEST(AdvisorTest, SsiRecommendedExactlyWhenWriteSkewBlocksSnapshot) {
  Workload w = MakeBankingWorkload(2);
  LevelAdvisor advisor(w.app, AdvisorOptions());

  // Withdraw_sav is the classic write-skew type: SNAPSHOT is rejected by
  // Thm 5 while SSI (serializable by construction) is fine, so SSI is the
  // advisable multiversion configuration.
  LevelAdvice skew = advisor.Advise("Withdraw_sav");
  ASSERT_FALSE(skew.snapshot_correct);
  ASSERT_TRUE(skew.CorrectAt(IsoLevel::kSsi));
  EXPECT_TRUE(skew.SsiRecommended());
  const std::string summary = SummarizeAdvice(skew);
  EXPECT_NE(summary.find("write skew is the only SNAPSHOT hazard"),
            std::string::npos);

  // Deposit_sav is already safe at SNAPSHOT — nothing to recommend.
  LevelAdvice safe = advisor.Advise("Deposit_sav");
  ASSERT_TRUE(safe.snapshot_correct);
  EXPECT_FALSE(safe.SsiRecommended());
  EXPECT_EQ(SummarizeAdvice(safe).find("recommended:"), std::string::npos);

  // The table flags the recommendation in the SSI column.
  const std::string table = RenderAdviceTable({skew, safe});
  EXPECT_NE(table.find("recommended"), std::string::npos);
}

TEST(AdvisorTest, RenderAdviceTableAlignsLongTypeNames) {
  // Two advices whose names differ wildly in length: every row of the
  // rendered table must have identical width and aligned column bars.
  LevelAdvice a;
  a.txn_type = "T";
  a.recommended = IsoLevel::kReadCommitted;
  LevelAdvice b;
  b.txn_type = "An_Extremely_Long_Transaction_Type_Name";
  b.recommended = IsoLevel::kSerializable;
  b.snapshot_correct = true;
  const std::string table = RenderAdviceTable({a, b});

  std::vector<std::string> lines;
  size_t start = 0;
  while (start < table.size()) {
    const size_t end = table.find('\n', start);
    lines.push_back(table.substr(start, end - start));
    start = end + 1;
  }
  ASSERT_EQ(lines.size(), 4u);  // header, separator, two rows
  for (const std::string& line : lines) {
    EXPECT_EQ(line.size(), lines[0].size()) << line;
  }
  // Column bars line up across header and rows.
  for (size_t pos = 0; pos < lines[0].size(); ++pos) {
    if (lines[0][pos] != '|') continue;
    for (const std::string& line : lines) EXPECT_EQ(line[pos], '|') << pos;
  }
}

}  // namespace
}  // namespace semcor
