// Tests for src/net/: wire codec round-trips and hostile-input behaviour,
// the loopback server end to end (negotiation, backpressure, shutdown), and
// counter parity between the server and the in-process step driver.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "txn/driver.h"
#include "workload/workload.h"

namespace semcor::net {
namespace {

// ---------------------------------------------------------------------------
// Wire codec.
// ---------------------------------------------------------------------------

TEST(WireTest, HelloRoundTrip) {
  HelloReq req;
  req.version = 7;
  req.client_name = "bench \"quoted\" \n client";
  Result<HelloReq> back = HelloReq::Decode(req.Encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().version, 7u);
  EXPECT_EQ(back.value().client_name, req.client_name);

  HelloResp resp;
  resp.session_id = 0xDEADBEEFCAFEull;
  resp.workload = "banking";
  Result<HelloResp> rback = HelloResp::Decode(resp.Encode());
  ASSERT_TRUE(rback.ok());
  EXPECT_EQ(rback.value().session_id, resp.session_id);
  EXPECT_EQ(rback.value().workload, "banking");
}

TEST(WireTest, BeginRoundTrip) {
  BeginReq req;
  req.txn_type = "Withdraw_sav";
  req.requested_level = kNegotiateLevel;
  req.params = {{"i", 3}, {"w", -42}};
  Result<BeginReq> back = BeginReq::Decode(req.Encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().txn_type, "Withdraw_sav");
  EXPECT_EQ(back.value().requested_level, kNegotiateLevel);
  ASSERT_EQ(back.value().params.size(), 2u);
  EXPECT_EQ(back.value().params[1].first, "w");
  EXPECT_EQ(back.value().params[1].second, -42);

  BeginResp resp;
  resp.txn_type = "Withdraw_sav";
  resp.level = 3;
  resp.negotiated = true;
  resp.advisor_correct = true;
  resp.verdict = "lowest correct level = REPEATABLE-READ";
  Result<BeginResp> rback = BeginResp::Decode(resp.Encode());
  ASSERT_TRUE(rback.ok());
  EXPECT_EQ(rback.value().level, 3);
  EXPECT_TRUE(rback.value().negotiated);
  EXPECT_TRUE(rback.value().advisor_correct);
  EXPECT_EQ(rback.value().verdict, resp.verdict);
}

TEST(WireTest, StepAndStatsRoundTrip) {
  StmtReq stmt;
  stmt.max_steps = 17;
  Result<StmtReq> sback = StmtReq::Decode(stmt.Encode());
  ASSERT_TRUE(sback.ok());
  EXPECT_EQ(sback.value().max_steps, 17u);

  StepResp step;
  step.outcome = static_cast<uint8_t>(StepWire::kBlocked);
  step.steps = 5;
  step.retry_after_ms = 2;
  step.detail = "lock conflict";
  Result<StepResp> stback = StepResp::Decode(step.Encode());
  ASSERT_TRUE(stback.ok());
  EXPECT_EQ(stback.value().outcome, step.outcome);
  EXPECT_EQ(stback.value().retry_after_ms, 2u);

  StatsResp stats;
  stats.counters = {{"committed", 12}, {"aborted", -1}};
  stats.gauges = {{"p99_us", 1234.5}, {"uptime_s", 0.25}};
  Result<StatsResp> back = StatsResp::Decode(stats.Encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().Counter("committed"), 12);
  EXPECT_EQ(back.value().Counter("aborted"), -1);
  EXPECT_EQ(back.value().Counter("missing", -7), -7);
  EXPECT_DOUBLE_EQ(back.value().Gauge("p99_us"), 1234.5);

  BusyResp busy;
  busy.retry_after_ms = 9;
  busy.reason = "full";
  Result<BusyResp> bback = BusyResp::Decode(busy.Encode());
  ASSERT_TRUE(bback.ok());
  EXPECT_EQ(bback.value().retry_after_ms, 9u);

  ErrorResp err;
  err.code = static_cast<uint16_t>(WireError::kBadVersion);
  err.message = "nope";
  Result<ErrorResp> eback = ErrorResp::Decode(err.Encode());
  ASSERT_TRUE(eback.ok());
  EXPECT_EQ(eback.value().code, static_cast<uint16_t>(WireError::kBadVersion));
}

TEST(WireTest, TruncatedAndTrailingGarbageAreErrors) {
  BeginReq req;
  req.txn_type = "T";
  req.params = {{"k", 1}};
  const std::string good = req.Encode();
  // Every proper prefix must fail to decode (bounds check), never crash.
  for (size_t cut = 0; cut < good.size(); ++cut) {
    EXPECT_FALSE(BeginReq::Decode(good.substr(0, cut)).ok()) << cut;
  }
  // Trailing garbage means the payload was not fully consumed: an error.
  EXPECT_FALSE(BeginReq::Decode(good + "x").ok());
  EXPECT_FALSE(StmtReq::Decode(StmtReq().Encode() + std::string(1, '\0')).ok());

  // An out-of-range step outcome is rejected even if structurally valid.
  StepResp bad;
  bad.outcome = 250;
  EXPECT_FALSE(StepResp::Decode(bad.Encode()).ok());
}

TEST(WireTest, RandomGarbageNeverCrashesDecoders) {
  Rng rng(20260806);
  for (int i = 0; i < 500; ++i) {
    std::string junk;
    const int len = static_cast<int>(rng.Uniform(0, 64));
    for (int j = 0; j < len; ++j) {
      junk.push_back(static_cast<char>(rng.Uniform(0, 255)));
    }
    // None of these may crash; decode success is allowed but irrelevant.
    (void)HelloReq::Decode(junk);
    (void)HelloResp::Decode(junk);
    (void)BeginReq::Decode(junk);
    (void)BeginResp::Decode(junk);
    (void)StmtReq::Decode(junk);
    (void)StepResp::Decode(junk);
    (void)StatsResp::Decode(junk);
    (void)BusyResp::Decode(junk);
    (void)ErrorResp::Decode(junk);
  }
}

TEST(WireTest, SeededRandomFramesRoundTripThroughParser) {
  Rng rng(42);
  std::vector<Frame> sent;
  std::string stream;
  for (int i = 0; i < 100; ++i) {
    Frame f;
    f.type = static_cast<MsgType>(rng.Uniform(1, 14));
    const int len = static_cast<int>(rng.Uniform(0, 200));
    for (int j = 0; j < len; ++j) {
      f.payload.push_back(static_cast<char>(rng.Uniform(0, 255)));
    }
    stream += EncodeFrame(f.type, f.payload);
    sent.push_back(std::move(f));
  }
  // Deliver in random-sized chunks; every frame must come back intact.
  FrameParser parser;
  std::vector<Frame> got;
  size_t pos = 0;
  while (pos < stream.size()) {
    const size_t n = std::min<size_t>(
        static_cast<size_t>(rng.Uniform(1, 97)), stream.size() - pos);
    parser.Feed(stream.data() + pos, n);
    pos += n;
    Frame f;
    while (parser.Pop(&f) == FrameParser::PopResult::kFrame) {
      got.push_back(std::move(f));
    }
  }
  ASSERT_EQ(got.size(), sent.size());
  for (size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(got[i].type, sent[i].type) << i;
    EXPECT_EQ(got[i].payload, sent[i].payload) << i;
  }
}

TEST(WireTest, FrameParserRejectsZeroAndOversizedLengths) {
  {
    FrameParser parser;
    const char zero[4] = {0, 0, 0, 0};
    parser.Feed(zero, 4);
    Frame f;
    EXPECT_EQ(parser.Pop(&f), FrameParser::PopResult::kError);
    EXPECT_FALSE(parser.error().empty());
    // Sticky: feeding valid bytes afterwards cannot resurrect the stream.
    const std::string ok = EncodeFrame(MsgType::kStats, "");
    parser.Feed(ok.data(), ok.size());
    EXPECT_EQ(parser.Pop(&f), FrameParser::PopResult::kError);
  }
  {
    FrameParser parser;
    WireWriter w;
    w.U32(kMaxFrameBytes + 1);
    const std::string hdr = w.Take();
    parser.Feed(hdr.data(), hdr.size());
    Frame f;
    EXPECT_EQ(parser.Pop(&f), FrameParser::PopResult::kError);
  }
}

// ---------------------------------------------------------------------------
// Server: handshake, negotiation, protocol errors.
// ---------------------------------------------------------------------------

ServerOptions BankingOptions() {
  ServerOptions options;
  options.workload = "banking";
  options.workers = 2;
  return options;
}

Client MakeClient(const Server& server) {
  ClientOptions copts;
  copts.port = server.port();
  copts.recv_timeout_ms = 20000;  // a wedged server fails the test, fast
  return Client(copts);
}

TEST(ServerTest, NegotiatesLevelAndCommits) {
  Server server(BankingOptions());
  ASSERT_TRUE(server.Start().ok()) << server.port();
  Client client = MakeClient(server);
  ASSERT_TRUE(client.Connect().ok());
  Result<HelloResp> hello = client.Hello();
  ASSERT_TRUE(hello.ok()) << hello.status().ToString();
  EXPECT_EQ(hello.value().workload, "banking");

  Result<TxnResult> run =
      client.RunTxn("Withdraw_sav", kNegotiateLevel, {{"i", 0}, {"w", 1}});
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run.value().committed) << run.value().detail;
  EXPECT_TRUE(run.value().negotiated);
  EXPECT_TRUE(run.value().advisor_correct);
  // The paper's analysis puts banking withdrawals at REPEATABLE READ.
  EXPECT_EQ(static_cast<IsoLevel>(run.value().level),
            IsoLevel::kRepeatableRead);

  const ServerMetricsSnapshot m = server.Metrics();
  EXPECT_EQ(m.Committed(), 1);
  EXPECT_EQ(m.Aborted(), 0);
  EXPECT_EQ(m.negotiated_begins, 1);
  EXPECT_TRUE(server.InvariantHolds());
  server.Stop();
}

TEST(ServerTest, ExplicitLevelHonoredButFlagged) {
  Server server(BankingOptions());
  ASSERT_TRUE(server.Start().ok());
  Client client = MakeClient(server);
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.Hello().ok());

  // READ UNCOMMITTED is below the recommended level: honoured, but the
  // analysis verdict says it is not semantically correct.
  const uint8_t ru = static_cast<uint8_t>(IsoLevel::kReadUncommitted);
  Result<TxnResult> run = client.RunTxn("Withdraw_sav", ru, {{"i", 1}, {"w", 1}});
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().level, ru);
  EXPECT_FALSE(run.value().negotiated);
  EXPECT_FALSE(run.value().advisor_correct);

  // At or above the recommendation the same request is marked correct.
  const uint8_t ser = static_cast<uint8_t>(IsoLevel::kSerializable);
  run = client.RunTxn("Withdraw_sav", ser, {{"i", 1}, {"w", 1}});
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run.value().advisor_correct);
  server.Stop();
}

TEST(ServerTest, RejectsBadVersionBadStateAndUnknownType) {
  Server server(BankingOptions());
  ASSERT_TRUE(server.Start().ok());
  {
    // Version mismatch: kError(kBadVersion), then the server closes.
    Client client = MakeClient(server);
    ASSERT_TRUE(client.Connect().ok());
    HelloReq req;
    req.version = 99;
    ASSERT_TRUE(client.SendFrame(MsgType::kHello, req.Encode()).ok());
    Frame frame;
    ASSERT_TRUE(client.RecvFrame(&frame).ok());
    ASSERT_EQ(frame.type, MsgType::kError);
    Result<ErrorResp> err = ErrorResp::Decode(frame.payload);
    ASSERT_TRUE(err.ok());
    EXPECT_EQ(err.value().code, static_cast<uint16_t>(WireError::kBadVersion));
  }
  {
    // BEGIN before HELLO is a state error; the session survives it.
    Client client = MakeClient(server);
    ASSERT_TRUE(client.Connect().ok());
    ASSERT_TRUE(client.SendFrame(MsgType::kBegin, BeginReq().Encode()).ok());
    Frame frame;
    ASSERT_TRUE(client.RecvFrame(&frame).ok());
    ASSERT_EQ(frame.type, MsgType::kError);
    Result<ErrorResp> err = ErrorResp::Decode(frame.payload);
    ASSERT_TRUE(err.ok());
    EXPECT_EQ(err.value().code, static_cast<uint16_t>(WireError::kBadState));
    ASSERT_TRUE(client.Hello().ok());  // recovery after the error
  }
  {
    Client client = MakeClient(server);
    ASSERT_TRUE(client.Connect().ok());
    ASSERT_TRUE(client.Hello().ok());
    Result<BeginResult> begin = client.Begin("NoSuchType", kNegotiateLevel);
    EXPECT_FALSE(begin.ok());  // surfaced as a server-error status
  }
  server.Stop();
}

TEST(ServerTest, GarbageFrameGetsErrorAndClose) {
  Server server(BankingOptions());
  ASSERT_TRUE(server.Start().ok());
  Client client = MakeClient(server);
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.Hello().ok());
  // A zero-length frame header destroys framing: expect kError, then EOF.
  ASSERT_TRUE(client.SendRaw(std::string(8, '\0')).ok());
  Frame frame;
  ASSERT_TRUE(client.RecvFrame(&frame).ok());
  EXPECT_EQ(frame.type, MsgType::kError);
  Status eof = client.RecvFrame(&frame);
  EXPECT_FALSE(eof.ok());
  EXPECT_EQ(eof.code(), Code::kAborted);  // connection closed by server
  server.Stop();
}

TEST(ServerTest, UnknownFrameTypeIsReportedNotFatal) {
  Server server(BankingOptions());
  ASSERT_TRUE(server.Start().ok());
  Client client = MakeClient(server);
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.Hello().ok());
  // kHelloOk is a server->client tag; sending it is a protocol error but
  // framing is intact, so the session survives.
  ASSERT_TRUE(client.SendFrame(MsgType::kHelloOk, "").ok());
  Frame frame;
  ASSERT_TRUE(client.RecvFrame(&frame).ok());
  EXPECT_EQ(frame.type, MsgType::kError);
  Result<StatsResp> stats = client.Stats();
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  server.Stop();
}

// ---------------------------------------------------------------------------
// Admission control and pipelined backpressure.
// ---------------------------------------------------------------------------

TEST(ServerTest, AdmissionControlReturnsRetryAfterInsteadOfHanging) {
  ServerOptions options = BankingOptions();
  options.max_inflight_txns = 1;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  Client holder = MakeClient(server);
  ASSERT_TRUE(holder.Connect().ok());
  ASSERT_TRUE(holder.Hello().ok());
  Result<BeginResult> held =
      holder.Begin("Withdraw_sav", kNegotiateLevel, {{"i", 0}, {"w", 1}});
  ASSERT_TRUE(held.ok());
  ASSERT_TRUE(held.value().admitted);

  // Second transaction: must get BUSY with a retry hint, promptly.
  Client blocked = MakeClient(server);
  ASSERT_TRUE(blocked.Connect().ok());
  ASSERT_TRUE(blocked.Hello().ok());
  Result<BeginResult> rejected =
      blocked.Begin("Deposit_sav", kNegotiateLevel, {{"i", 1}, {"d", 1}});
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  EXPECT_FALSE(rejected.value().admitted);
  EXPECT_GT(rejected.value().retry_after_ms, 0u);

  // Finish the holder; the slot frees and the retry is admitted.
  for (;;) {
    Result<StepResp> step = holder.Stmt();
    ASSERT_TRUE(step.ok());
    const StepWire outcome = static_cast<StepWire>(step.value().outcome);
    ASSERT_NE(outcome, StepWire::kAborted);
    if (outcome == StepWire::kBodyDone) break;
  }
  Result<StepResp> committed = holder.Commit();
  ASSERT_TRUE(committed.ok());
  ASSERT_EQ(static_cast<StepWire>(committed.value().outcome),
            StepWire::kCommitted);

  Result<TxnResult> retry =
      blocked.RunTxn("Deposit_sav", kNegotiateLevel, {{"i", 1}, {"d", 1}});
  ASSERT_TRUE(retry.ok());
  EXPECT_TRUE(retry.value().committed);

  const ServerMetricsSnapshot m = server.Metrics();
  EXPECT_GE(m.admission_rejected, 1);
  EXPECT_EQ(m.inflight, 0);
  server.Stop();
}

TEST(ServerTest, PipelinedFloodIsAnsweredFrameForFrame) {
  ServerOptions options = BankingOptions();
  options.session_queue_limit = 2;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());
  Client client = MakeClient(server);
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.Hello().ok());

  // Fire a burst of STATS requests without reading responses. Every frame
  // must be answered — served (kStatsOk) or shed (kBusy) — and the session
  // must stay usable; no response may be dropped and nothing may hang.
  constexpr int kBurst = 32;
  std::string burst;
  for (int i = 0; i < kBurst; ++i) burst += EncodeFrame(MsgType::kStats, "");
  ASSERT_TRUE(client.SendRaw(burst).ok());
  int served = 0, shed = 0;
  for (int i = 0; i < kBurst; ++i) {
    Frame frame;
    ASSERT_TRUE(client.RecvFrame(&frame).ok()) << "response " << i;
    if (frame.type == MsgType::kStatsOk) {
      served++;
    } else {
      ASSERT_EQ(frame.type, MsgType::kBusy);
      Result<BusyResp> busy = BusyResp::Decode(frame.payload);
      ASSERT_TRUE(busy.ok());
      EXPECT_GT(busy.value().retry_after_ms, 0u);
      shed++;
    }
  }
  EXPECT_EQ(served + shed, kBurst);
  EXPECT_GT(served, 0);
  Result<StatsResp> after = client.Stats();
  ASSERT_TRUE(after.ok());  // session still healthy after the flood
  server.Stop();
}

// ---------------------------------------------------------------------------
// Loopback smoke: concurrent mixed-level load, tallies equal server stats.
// ---------------------------------------------------------------------------

struct SmokeTally {
  std::array<long, kIsoLevelCount> commits{};
  std::array<long, kIsoLevelCount> aborts{};
  long busy = 0;
  long blocked = 0;
};

void RunSmoke(const std::string& workload, int threads, int txns_per_thread,
              SmokeTally* total) {
  ServerOptions options;
  options.workload = workload;
  options.workers = 3;
  options.max_inflight_txns = 16;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  std::mutex mu;
  std::atomic<int> failures{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      ClientOptions copts;
      copts.port = server.port();
      Client client(copts);
      if (!client.Connect().ok() || !client.Hello().ok()) {
        failures++;
        return;
      }
      SmokeTally local;
      for (int i = 0; i < txns_per_thread; ++i) {
        // Empty type: the server draws from its mix, then negotiates the
        // lowest statically-correct level for the drawn type.
        Result<TxnResult> run = client.RunTxn("", kNegotiateLevel);
        if (!run.ok()) {
          failures++;
          return;
        }
        const TxnResult& r = run.value();
        EXPECT_TRUE(r.negotiated);
        EXPECT_TRUE(r.advisor_correct);
        if (r.committed) {
          local.commits[r.level]++;
        } else {
          local.aborts[r.level]++;
        }
        local.busy += r.busy_retries;
        local.blocked += r.blocked_retries;
      }
      std::lock_guard<std::mutex> lock(mu);
      for (int i = 0; i < kIsoLevelCount; ++i) {
        total->commits[i] += local.commits[i];
        total->aborts[i] += local.aborts[i];
      }
      total->busy += local.busy;
      total->blocked += local.blocked;
    });
  }
  for (std::thread& t : pool) t.join();
  ASSERT_EQ(failures.load(), 0);

  // Quiescent now: the server's counters must equal the client tallies
  // exactly, level by level, and the workload invariant must hold.
  const ServerMetricsSnapshot m = server.Metrics();
  long committed = 0, aborted = 0;
  for (int i = 0; i < kIsoLevelCount; ++i) {
    EXPECT_EQ(m.commits[i], total->commits[i]) << "level " << i;
    EXPECT_EQ(m.aborts[i], total->aborts[i]) << "level " << i;
    committed += total->commits[i];
    aborted += total->aborts[i];
  }
  EXPECT_EQ(m.Committed(), committed);
  EXPECT_EQ(m.Aborted(), aborted);
  EXPECT_EQ(m.Committed() + m.Aborted(),
            static_cast<long>(threads) * txns_per_thread);
  EXPECT_EQ(m.inflight, 0);
  EXPECT_TRUE(server.InvariantHolds());

  // The same numbers via the wire: STATS must agree with Metrics().
  Client control = MakeClient(server);
  ASSERT_TRUE(control.Connect().ok());
  ASSERT_TRUE(control.Hello().ok());
  Result<StatsResp> stats = control.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().Counter("committed"), committed);
  EXPECT_EQ(stats.value().Counter("aborted"), aborted);
  EXPECT_EQ(stats.value().Counter("invariant_ok"), 1);
  EXPECT_EQ(stats.value().Counter("injected_faults"), 0);
  server.Stop();
}

TEST(ServerTest, LoopbackSmokeBankingAndOrders) {
  // 4 threads x (30 + 25) = 220 transactions total across two workloads at
  // negotiated levels — banking lands on REPEATABLE READ, orders mixes
  // levels per type (the §6 assignment).
  SmokeTally banking;
  RunSmoke("banking", 4, 30, &banking);
  SmokeTally orders;
  RunSmoke("orders", 4, 25, &orders);
  long total = 0;
  for (int i = 0; i < kIsoLevelCount; ++i) {
    total += banking.commits[i] + banking.aborts[i] + orders.commits[i] +
             orders.aborts[i];
  }
  EXPECT_EQ(total, 4 * 30 + 4 * 25);
}

// ---------------------------------------------------------------------------
// Parity with the in-process stack.
// ---------------------------------------------------------------------------

TEST(ServerTest, SequentialCountersMatchInProcessDriver) {
  // The same seeded sequence of programs through (a) the server over the
  // wire and (b) a fresh in-process ProgramRun stack; every ExecStats-shaped
  // counter must agree.
  const std::vector<std::pair<std::string,
                              std::vector<std::pair<std::string, int64_t>>>>
      script = {
          {"Withdraw_sav", {{"i", 0}, {"w", 3}}},
          {"Deposit_ch", {{"i", 0}, {"d", 2}}},
          {"Withdraw_ch", {{"i", 1}, {"w", 1}}},
          {"Deposit_sav", {{"i", 2}, {"d", 5}}},
          {"Withdraw_sav", {{"i", 2}, {"w", 100}}},  // guard fails, still commits
          {"Withdraw_ch", {{"i", 3}, {"w", 2}}},
      };
  const uint8_t rr = static_cast<uint8_t>(IsoLevel::kRepeatableRead);

  Server server(BankingOptions());
  ASSERT_TRUE(server.Start().ok());
  Client client = MakeClient(server);
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.Hello().ok());
  for (const auto& [type, params] : script) {
    Result<TxnResult> run = client.RunTxn(type, rr, params);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run.value().blocked_retries, 0);  // sequential: no conflicts
  }
  const ServerMetricsSnapshot server_m = server.Metrics();
  server.Stop();

  Workload workload = MakeBankingWorkload();
  Store store;
  LockManager locks;
  TxnManager mgr(&store, &locks);
  ASSERT_TRUE(workload.setup(&store).ok());
  CommitLog log;
  StepDriver driver(&mgr, &log);
  long committed = 0, aborted = 0;
  for (const auto& [type, params] : script) {
    std::map<std::string, Value> value_params;
    for (const auto& [key, v] : params) value_params[key] = Value::Int(v);
    auto program = workload.InstantiateWith(type, value_params);
    ASSERT_NE(program, nullptr);
    const int idx = driver.Add(program, IsoLevel::kRepeatableRead);
    while (!driver.run(idx).Done()) driver.Step(idx);
    (driver.run(idx).outcome() == StepOutcome::kCommitted ? committed
                                                          : aborted)++;
  }
  EXPECT_EQ(server_m.Committed(), committed);
  EXPECT_EQ(server_m.Aborted(), aborted);
  EXPECT_EQ(server_m.deadlocks, 0);
  EXPECT_EQ(server_m.fcw_conflicts, 0);
  EXPECT_EQ(server_m.deadlock_victims, driver.deadlock_victims());
  EXPECT_EQ(server_m.blocked_retries, driver.blocked_steps());
}

TEST(ServerTest, DeadlockParityWithStepDriver) {
  // Withdraw_sav(0) and Withdraw_ch(0) at REPEATABLE READ S-lock both
  // balances, then upgrade different ones: a classic upgrade deadlock. The
  // in-process round-robin driver resolves it with one victim; the server's
  // bounded-wait policy must converge to the same counts.
  const std::vector<std::pair<std::string, int64_t>> params = {{"i", 0},
                                                               {"w", 1}};
  const uint8_t rr = static_cast<uint8_t>(IsoLevel::kRepeatableRead);

  // In-process baseline.
  Workload workload = MakeBankingWorkload();
  long driver_committed = 0, driver_aborted = 0;
  long driver_victims;
  {
    Store store;
    LockManager locks;
    TxnManager mgr(&store, &locks);
    ASSERT_TRUE(workload.setup(&store).ok());
    std::map<std::string, Value> value_params = {{"i", Value::Int(0)},
                                                 {"w", Value::Int(1)}};
    StepDriver driver(&mgr);
    driver.Add(workload.InstantiateWith("Withdraw_sav", value_params),
               IsoLevel::kRepeatableRead);
    driver.Add(workload.InstantiateWith("Withdraw_ch", value_params),
               IsoLevel::kRepeatableRead);
    driver.RunRoundRobin();
    for (int i = 0; i < 2; ++i) {
      (driver.run(i).outcome() == StepOutcome::kCommitted ? driver_committed
                                                          : driver_aborted)++;
    }
    driver_victims = driver.deadlock_victims();
    ASSERT_EQ(driver_victims, 1);
  }

  // Server twin: step the two sessions alternately one statement at a time
  // until both are blocked, then hammer session 1 until the bounded-wait
  // policy aborts it, and let session 2 finish.
  ServerOptions options = BankingOptions();
  options.blocked_abort_threshold = 3;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());
  Client c1 = MakeClient(server);
  Client c2 = MakeClient(server);
  ASSERT_TRUE(c1.Connect().ok());
  ASSERT_TRUE(c2.Connect().ok());
  ASSERT_TRUE(c1.Hello().ok());
  ASSERT_TRUE(c2.Hello().ok());
  Result<BeginResult> b1 = c1.Begin("Withdraw_sav", rr, params);
  Result<BeginResult> b2 = c2.Begin("Withdraw_ch", rr, params);
  ASSERT_TRUE(b1.ok() && b1.value().admitted);
  ASSERT_TRUE(b2.ok() && b2.value().admitted);

  // Alternate single statements until both report kBlocked back to back.
  auto step_one = [](Client& c) -> StepWire {
    Result<StepResp> r = c.Stmt(1);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return static_cast<StepWire>(r.value().outcome);
  };
  StepWire s1 = StepWire::kRunning, s2 = StepWire::kRunning;
  for (int i = 0; i < 64; ++i) {
    s1 = step_one(c1);
    s2 = step_one(c2);
    if (s1 == StepWire::kBlocked && s2 == StepWire::kBlocked) break;
  }
  ASSERT_EQ(s1, StepWire::kBlocked);
  ASSERT_EQ(s2, StepWire::kBlocked);

  // Hammer session 1 past the threshold: it becomes the deadlock victim.
  bool aborted = false;
  for (int i = 0; i < 16 && !aborted; ++i) {
    aborted = step_one(c1) == StepWire::kAborted;
  }
  ASSERT_TRUE(aborted);

  // Session 2 is unblocked now and must run to commit.
  for (;;) {
    const StepWire outcome = step_one(c2);
    ASSERT_NE(outcome, StepWire::kAborted);
    if (outcome == StepWire::kBodyDone) break;
  }
  Result<StepResp> commit = c2.Commit();
  ASSERT_TRUE(commit.ok());
  ASSERT_EQ(static_cast<StepWire>(commit.value().outcome),
            StepWire::kCommitted);

  const ServerMetricsSnapshot m = server.Metrics();
  EXPECT_EQ(m.Committed(), driver_committed);
  EXPECT_EQ(m.Aborted(), driver_aborted);
  EXPECT_EQ(m.deadlock_victims, driver_victims);
  EXPECT_EQ(m.deadlocks, driver_victims);
  EXPECT_TRUE(server.InvariantHolds());
  server.Stop();
}

// ---------------------------------------------------------------------------
// Shutdown protocol.
// ---------------------------------------------------------------------------

TEST(ServerTest, ClientRequestedShutdownStopsServing) {
  Server server(BankingOptions());
  ASSERT_TRUE(server.Start().ok());
  Client client = MakeClient(server);
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.Hello().ok());
  ASSERT_TRUE(client.Shutdown().ok());
  server.WaitUntilStopped();
  EXPECT_FALSE(server.serving());
  server.Stop();  // join; must be clean and idempotent
  server.Stop();
}

}  // namespace
}  // namespace semcor::net
