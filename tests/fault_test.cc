#include <gtest/gtest.h>

#include <vector>

#include "fault/fault.h"
#include "fault/policy.h"
#include "sem/prog/builder.h"
#include "txn/driver.h"
#include "txn/executor.h"
#include "workload/workload.h"

namespace semcor {
namespace {

// ---- FaultInjector: determinism and scripting ----

TEST(FaultInjectorTest, SeededDecisionsAreDeterministic) {
  FaultPlan plan = FaultPlan::Seeded(7);
  FaultInjector a(plan), b(plan);
  a.BeginRun();
  b.BeginRun();
  for (TxnId txn = 1; txn <= 4; ++txn) {
    for (int visit = 0; visit < 32; ++visit) {
      EXPECT_EQ(a.At(FaultSite::kCommit, txn), b.At(FaultSite::kCommit, txn));
      EXPECT_EQ(a.At(FaultSite::kStatementApply, txn),
                b.At(FaultSite::kStatementApply, txn));
      EXPECT_EQ(a.At(FaultSite::kLockGrant, txn),
                b.At(FaultSite::kLockGrant, txn));
    }
  }
  // A quarter-probability commit site must have fired by now.
  EXPECT_GT(a.stats().injected, 0);
}

TEST(FaultInjectorTest, DecisionsIndependentOfArrivalOrder) {
  // The decision for (txn, site, visit) must not depend on how other
  // transactions' visits interleave with it.
  FaultPlan plan = FaultPlan::Seeded(11);
  FaultInjector a(plan), b(plan);
  a.BeginRun();
  b.BeginRun();
  std::vector<FaultKind> txn1_a, txn1_b;
  for (int visit = 0; visit < 16; ++visit) {
    txn1_a.push_back(a.At(FaultSite::kStatementApply, 1));
    a.At(FaultSite::kStatementApply, 2);  // interleaved in a...
  }
  for (int visit = 0; visit < 16; ++visit) {  // ...but not in b
    txn1_b.push_back(b.At(FaultSite::kStatementApply, 1));
  }
  EXPECT_EQ(txn1_a, txn1_b);
}

TEST(FaultInjectorTest, ScriptedFaultFiresAtExactVisit) {
  FaultPlan plan;
  plan.script.push_back(
      {FaultSite::kStatementApply, 2, 3, FaultKind::kForcedAbort});
  FaultInjector inj(plan);
  inj.BeginRun();
  EXPECT_EQ(inj.At(FaultSite::kStatementApply, 2), FaultKind::kNone);
  EXPECT_EQ(inj.At(FaultSite::kStatementApply, 2), FaultKind::kNone);
  EXPECT_EQ(inj.At(FaultSite::kStatementApply, 1), FaultKind::kNone);  // txn 1
  EXPECT_EQ(inj.At(FaultSite::kStatementApply, 2), FaultKind::kForcedAbort);
  EXPECT_EQ(inj.At(FaultSite::kStatementApply, 2), FaultKind::kNone);
  EXPECT_EQ(inj.stats().forced_aborts, 1);
}

TEST(FaultInjectorTest, BeginRunRewindsVisitsButKeepsCumulativeStats) {
  FaultPlan plan;
  plan.script.push_back({FaultSite::kCommit, 0, 1, FaultKind::kCrashBeforeCommit});
  FaultInjector inj(plan);
  inj.BeginRun();
  EXPECT_EQ(inj.At(FaultSite::kCommit, 1), FaultKind::kCrashBeforeCommit);
  EXPECT_EQ(inj.At(FaultSite::kCommit, 1), FaultKind::kNone);
  EXPECT_EQ(inj.run_injected(), 1);
  inj.BeginRun();  // the same schedule replays the same fault
  EXPECT_EQ(inj.run_injected(), 0);
  EXPECT_EQ(inj.At(FaultSite::kCommit, 1), FaultKind::kCrashBeforeCommit);
  EXPECT_EQ(inj.run_injected(), 1);
  EXPECT_EQ(inj.stats().crashes, 2);  // cumulative across runs
}

TEST(FaultInjectorTest, FaultStatusMapsKindsToAbortCodes) {
  EXPECT_TRUE(FaultStatus(FaultKind::kNone).ok());
  EXPECT_EQ(FaultStatus(FaultKind::kForcedAbort).code(), Code::kAborted);
  EXPECT_EQ(FaultStatus(FaultKind::kTransientLockFailure).code(),
            Code::kWouldBlock);
  EXPECT_EQ(FaultStatus(FaultKind::kCrashBeforeCommit).code(), Code::kAborted);
}

// ---- Schedulable rollback through the interpreter ----

class FaultRunTest : public ::testing::Test {
 protected:
  FaultRunTest() : mgr_(&store_, &locks_) {}

  void SetUp() override {
    ASSERT_TRUE(store_.CreateItem("x", Value::Int(10)).ok());
    ASSERT_TRUE(store_
                    .CreateTable("T", Schema({{"k", Value::Type::kInt},
                                              {"v", Value::Type::kInt}}))
                    .ok());
  }

  std::shared_ptr<TxnProgram> DoubleWrite() {
    ProgramBuilder b("W");
    b.Read("X", "x");
    b.Write("x", Lit(int64_t{1}));
    b.Write("x", Lit(int64_t{2}));
    return std::make_shared<TxnProgram>(b.Build({}));
  }

  Store store_;
  LockManager locks_;
  TxnManager mgr_;
  CommitLog log_;
};

TEST_F(FaultRunTest, CrashBeforeCommitUnwindsOneUndoWritePerStep) {
  FaultPlan plan;
  plan.script.push_back(
      {FaultSite::kCommit, 0, 1, FaultKind::kCrashBeforeCommit});
  FaultInjector inj(plan);
  inj.BeginRun();
  ProgramRun run(&mgr_, DoubleWrite(), IsoLevel::kReadCommitted, &log_);
  run.EnableSchedulableRollback(true);
  run.SetFaultInjector(&inj);
  ASSERT_EQ(run.Step(false), StepOutcome::kRunning);  // read
  ASSERT_EQ(run.Step(false), StepOutcome::kRunning);  // x := 1
  ASSERT_EQ(run.Step(false), StepOutcome::kRunning);  // x := 2
  // The commit step crashes: the run enters rollback but nothing unwinds yet.
  ASSERT_EQ(run.Step(false), StepOutcome::kRollingBack);
  EXPECT_TRUE(run.rolling_back());
  EXPECT_FALSE(run.last_step_applied_undo());
  EXPECT_EQ(store_.ReadItemLatest("x").value().AsInt(), 2);
  // First undo write restores the intermediate image...
  ASSERT_EQ(run.Step(false), StepOutcome::kRollingBack);
  EXPECT_TRUE(run.last_step_applied_undo());
  EXPECT_EQ(store_.ReadItemLatest("x").value().AsInt(), 1);
  // ...the second clears the transaction's image entirely...
  ASSERT_EQ(run.Step(false), StepOutcome::kRollingBack);
  EXPECT_EQ(store_.ReadItemLatest("x").value().AsInt(), 10);
  // ...and the finishing step releases locks and retires the transaction.
  const TxnId id = run.txn().id;
  EXPECT_GT(locks_.HeldCount(id), 0u);
  ASSERT_EQ(run.Step(false), StepOutcome::kAborted);
  EXPECT_EQ(locks_.HeldCount(id), 0u);
  EXPECT_EQ(store_.ReadItemCommitted("x").value().AsInt(), 10);
  EXPECT_EQ(log_.size(), 0u);
}

TEST_F(FaultRunTest, AtomicRollbackStaysSingleStep) {
  // Without schedulable rollback the same fault aborts in one step.
  FaultPlan plan;
  plan.script.push_back(
      {FaultSite::kCommit, 0, 1, FaultKind::kCrashBeforeCommit});
  FaultInjector inj(plan);
  inj.BeginRun();
  ProgramRun run(&mgr_, DoubleWrite(), IsoLevel::kReadCommitted, &log_);
  run.SetFaultInjector(&inj);
  ASSERT_EQ(run.Step(false), StepOutcome::kRunning);
  ASSERT_EQ(run.Step(false), StepOutcome::kRunning);
  ASSERT_EQ(run.Step(false), StepOutcome::kRunning);
  ASSERT_EQ(run.Step(false), StepOutcome::kAborted);
  EXPECT_EQ(run.failure().code(), Code::kAborted);
  EXPECT_EQ(store_.ReadItemLatest("x").value().AsInt(), 10);
}

TEST_F(FaultRunTest, ForcedAbortAtStatementSiteRollsBackStepwise) {
  FaultPlan plan;
  plan.script.push_back(
      {FaultSite::kStatementApply, 0, 3, FaultKind::kForcedAbort});
  FaultInjector inj(plan);
  inj.BeginRun();
  ProgramRun run(&mgr_, DoubleWrite(), IsoLevel::kReadCommitted, &log_);
  run.EnableSchedulableRollback(true);
  run.SetFaultInjector(&inj);
  ASSERT_EQ(run.Step(false), StepOutcome::kRunning);       // read
  ASSERT_EQ(run.Step(false), StepOutcome::kRunning);       // x := 1
  ASSERT_EQ(run.Step(false), StepOutcome::kRollingBack);   // fault before x := 2
  EXPECT_EQ(store_.ReadItemLatest("x").value().AsInt(), 1);
  ASSERT_EQ(run.Step(false), StepOutcome::kRollingBack);   // undo x := 1
  EXPECT_EQ(store_.ReadItemLatest("x").value().AsInt(), 10);
  ASSERT_EQ(run.Step(false), StepOutcome::kAborted);
}

TEST_F(FaultRunTest, TransientLockFailureRetriesInTryLockMode) {
  FaultPlan plan;
  plan.script.push_back(
      {FaultSite::kStatementApply, 0, 1, FaultKind::kTransientLockFailure});
  FaultInjector inj(plan);
  inj.BeginRun();
  ProgramRun run(&mgr_, DoubleWrite(), IsoLevel::kReadCommitted, &log_);
  run.SetFaultInjector(&inj);
  // The first visit fails transiently; the retry (visit 2) goes through.
  ASSERT_EQ(run.Step(false), StepOutcome::kBlocked);
  ASSERT_EQ(run.Step(false), StepOutcome::kRunning);
  ASSERT_EQ(run.Step(false), StepOutcome::kRunning);
  ASSERT_EQ(run.Step(false), StepOutcome::kRunning);
  ASSERT_EQ(run.Step(false), StepOutcome::kCommitted);
  EXPECT_EQ(store_.ReadItemCommitted("x").value().AsInt(), 2);
}

TEST_F(FaultRunTest, LockGrantFaultVetoesTheGrant) {
  FaultPlan plan;
  plan.script.push_back(
      {FaultSite::kLockGrant, 0, 1, FaultKind::kTransientLockFailure});
  FaultInjector inj(plan);
  inj.BeginRun();
  locks_.SetFaultHook([&inj](TxnId txn) {
    return FaultStatus(inj.At(FaultSite::kLockGrant, txn));
  });
  ProgramRun run(&mgr_, DoubleWrite(), IsoLevel::kReadCommitted, &log_);
  // The read's lock grant fails once (WouldBlock -> kBlocked in try-lock
  // mode), then the retry is granted and the program completes.
  ASSERT_EQ(run.Step(false), StepOutcome::kBlocked);
  EXPECT_EQ(inj.stats().transient_lock_failures, 1);
  EXPECT_EQ(run.RunToCompletion(), StepOutcome::kCommitted);
  locks_.SetFaultHook(nullptr);
}

TEST_F(FaultRunTest, InsertUndoRemovesTheRow) {
  ProgramBuilder b("I");
  b.Insert("T", {{"k", Lit(int64_t{1})}, {"v", Lit(int64_t{5})}});
  FaultPlan plan;
  plan.script.push_back(
      {FaultSite::kCommit, 0, 1, FaultKind::kForcedAbort});
  FaultInjector inj(plan);
  inj.BeginRun();
  ProgramRun run(&mgr_, std::make_shared<TxnProgram>(b.Build({})),
                 IsoLevel::kReadCommitted, &log_);
  run.EnableSchedulableRollback(true);
  run.SetFaultInjector(&inj);
  ASSERT_EQ(run.Step(false), StepOutcome::kRunning);      // insert
  ASSERT_EQ(run.Step(false), StepOutcome::kRollingBack);  // fault at commit
  long rows_mid = 0;
  ASSERT_TRUE(store_
                  .ScanLatestWithWriter("T", [&](RowId, const Tuple&,
                                                 std::optional<TxnId>) {
                    ++rows_mid;
                  })
                  .ok());
  EXPECT_EQ(rows_mid, 1);  // the dirty row is visible mid-rollback
  ASSERT_EQ(run.Step(false), StepOutcome::kRollingBack);  // undo the insert
  long rows_after = 0;
  ASSERT_TRUE(store_
                  .ScanLatestWithWriter("T", [&](RowId, const Tuple&,
                                                 std::optional<TxnId>) {
                    ++rows_after;
                  })
                  .ok());
  EXPECT_EQ(rows_after, 0);
  ASSERT_EQ(run.Step(false), StepOutcome::kAborted);
}

TEST_F(FaultRunTest, ReadUncommittedReadOfRollingBackValueIsCounted) {
  // Writer dirties x and crashes at commit; before its undo writes run, a
  // READ-UNCOMMITTED reader observes the doomed value. This is exactly the
  // undo-write interference Theorem 1 obliges the static check to rule out.
  FaultPlan plan;
  plan.script.push_back(
      {FaultSite::kCommit, 0, 1, FaultKind::kCrashBeforeCommit});
  FaultInjector inj(plan);
  inj.BeginRun();
  ProgramRun writer(&mgr_, DoubleWrite(), IsoLevel::kReadCommitted, &log_);
  writer.EnableSchedulableRollback(true);
  writer.SetFaultInjector(&inj);
  ASSERT_EQ(writer.Step(false), StepOutcome::kRunning);
  ASSERT_EQ(writer.Step(false), StepOutcome::kRunning);
  ASSERT_EQ(writer.Step(false), StepOutcome::kRunning);
  ASSERT_EQ(writer.Step(false), StepOutcome::kRollingBack);

  ProgramBuilder rb("R");
  rb.Read("X", "x");
  ProgramRun reader(&mgr_, std::make_shared<TxnProgram>(rb.Build({})),
                    IsoLevel::kReadUncommitted, &log_);
  ASSERT_EQ(reader.Step(false), StepOutcome::kRunning);
  EXPECT_EQ(reader.txn().locals.at("X").AsInt(), 2);  // the doomed value
  EXPECT_EQ(reader.txn().dirty_reads, 1);
  EXPECT_EQ(reader.txn().undo_dirty_reads, 1);

  // Drain the rollback; a fresh read now sees the committed value.
  while (!writer.Done()) writer.Step(false);
  ProgramBuilder rb2("R2");
  rb2.Read("X", "x");
  ProgramRun reader2(&mgr_, std::make_shared<TxnProgram>(rb2.Build({})),
                     IsoLevel::kReadUncommitted, &log_);
  ASSERT_EQ(reader2.Step(false), StepOutcome::kRunning);
  EXPECT_EQ(reader2.txn().locals.at("X").AsInt(), 10);
  EXPECT_EQ(reader2.txn().undo_dirty_reads, 0);
}

TEST_F(FaultRunTest, ForceAbortCompletesAnInProgressRollback) {
  FaultPlan plan;
  plan.script.push_back(
      {FaultSite::kCommit, 0, 1, FaultKind::kCrashBeforeCommit});
  FaultInjector inj(plan);
  inj.BeginRun();
  ProgramRun run(&mgr_, DoubleWrite(), IsoLevel::kReadCommitted, &log_);
  run.EnableSchedulableRollback(true);
  run.SetFaultInjector(&inj);
  while (!run.rolling_back()) run.Step(false);
  run.ForceAbort(Status::Deadlock("victim"));
  EXPECT_TRUE(run.Done());
  // The wholesale abort discarded every remaining image and lock; the
  // original fault reason is preserved over the ForceAbort reason.
  EXPECT_EQ(store_.ReadItemLatest("x").value().AsInt(), 10);
  EXPECT_EQ(locks_.HeldCount(run.txn().id), 0u);
  EXPECT_EQ(run.failure().code(), Code::kAborted);
}

// ---- Deadlock and retry policies ----

TEST(DeadlockPolicyTest, PickVictimPerPolicy) {
  const std::vector<int> blocked = {0, 2, 3};
  auto ids = [](int i) { return static_cast<TxnId>(10 - i); };  // 10, 8, 7
  DeadlockPolicy youngest;  // default kind
  EXPECT_EQ(PickDeadlockVictim(youngest, blocked, ids), 3);
  DeadlockPolicy wound{DeadlockPolicyKind::kWoundWait};
  // Wound-wait aborts the transaction that began last: index 0 (id 10).
  EXPECT_EQ(PickDeadlockVictim(wound, blocked, ids), 0);
  EXPECT_EQ(PickDeadlockVictim(youngest, {}, ids), -1);
}

TEST(DeadlockPolicyTest, WoundWaitTiesGoToHigherIndex) {
  DeadlockPolicy wound{DeadlockPolicyKind::kWoundWait};
  auto same = [](int) { return static_cast<TxnId>(5); };
  EXPECT_EQ(PickDeadlockVictim(wound, {1, 2}, same), 2);
}

TEST(DeadlockPolicyTest, ParseNamesAndBounds) {
  DeadlockPolicy p;
  ASSERT_TRUE(ParseDeadlockPolicy("youngest", &p));
  EXPECT_EQ(p.kind, DeadlockPolicyKind::kYoungestAbort);
  ASSERT_TRUE(ParseDeadlockPolicy("wound_wait", &p));
  EXPECT_EQ(p.kind, DeadlockPolicyKind::kWoundWait);
  ASSERT_TRUE(ParseDeadlockPolicy("bounded_wait:9", &p));
  EXPECT_EQ(p.kind, DeadlockPolicyKind::kBoundedWait);
  EXPECT_EQ(p.wait_bound, 9);
  EXPECT_FALSE(ParseDeadlockPolicy("nope", &p));
}

TEST(DeadlockPolicyTest, RoundRobinResolvesDeadlockUnderEveryPolicy) {
  // T1 locks x then y; T2 locks y then x — a guaranteed try-lock deadlock
  // under round-robin. Every policy must abort exactly one of them and let
  // the other commit.
  for (DeadlockPolicyKind kind :
       {DeadlockPolicyKind::kYoungestAbort, DeadlockPolicyKind::kWoundWait,
        DeadlockPolicyKind::kBoundedWait}) {
    Store store;
    LockManager locks;
    TxnManager mgr(&store, &locks);
    ASSERT_TRUE(store.CreateItem("x", Value::Int(0)).ok());
    ASSERT_TRUE(store.CreateItem("y", Value::Int(0)).ok());
    ProgramBuilder b1("T1");
    b1.Write("x", Lit(int64_t{1}));
    b1.Write("y", Lit(int64_t{1}));
    ProgramBuilder b2("T2");
    b2.Write("y", Lit(int64_t{2}));
    b2.Write("x", Lit(int64_t{2}));
    StepDriver driver(&mgr, nullptr);
    driver.SetDeadlockPolicy({kind, /*wait_bound=*/2});
    driver.Add(std::make_shared<TxnProgram>(b1.Build({})),
               IsoLevel::kSerializable);
    driver.Add(std::make_shared<TxnProgram>(b2.Build({})),
               IsoLevel::kSerializable);
    driver.RunRoundRobin();
    int committed = 0, aborted = 0;
    for (int i = 0; i < driver.size(); ++i) {
      if (driver.run(i).outcome() == StepOutcome::kCommitted) ++committed;
      if (driver.run(i).outcome() == StepOutcome::kAborted) ++aborted;
    }
    EXPECT_EQ(committed, 1) << DeadlockPolicyName(kind);
    EXPECT_EQ(aborted, 1) << DeadlockPolicyName(kind);
  }
}

TEST(RetryPolicyTest, DeterministicBackoffIsStableAndBounded) {
  RetryPolicy retry;
  retry.backoff_base_us = 100;
  for (int attempt = 0; attempt < 5; ++attempt) {
    const uint64_t us = retry.BackoffUs(attempt, /*salt=*/42);
    EXPECT_EQ(us, retry.BackoffUs(attempt, 42));  // pure function
    EXPECT_LT(us, static_cast<uint64_t>(100 * (attempt + 1)));
  }
  // Different salts decorrelate workers.
  bool differs = false;
  for (int attempt = 0; attempt < 5 && !differs; ++attempt) {
    differs = retry.BackoffUs(attempt, 1) != retry.BackoffUs(attempt, 2);
  }
  EXPECT_TRUE(differs);
  retry.backoff_base_us = 0;
  EXPECT_EQ(retry.BackoffUs(3, 42), 0u);
}

TEST(RetryPolicyTest, ExecutorSurfacesFaultAndRetryStats) {
  Store store;
  LockManager locks;
  TxnManager mgr(&store, &locks);
  Workload w = MakeBankingWorkload(4);
  ASSERT_TRUE(w.setup(&store).ok());
  FaultInjector faults(FaultPlan::Seeded(3, /*p_lock=*/0, /*p_stmt=*/0.2,
                                         /*p_commit=*/0.5));
  faults.BeginRun();
  CommitLog log;
  ConcurrentExecutor executor(&mgr, 2);
  RetryPolicy retry;
  retry.max_attempts = 2;
  retry.backoff_base_us = 0;
  double wall = 0;
  ExecStats stats = executor.Run(
      [&](Rng& rng) {
        return w.DrawFromMix(rng, w.paper_levels, IsoLevel::kSerializable);
      },
      40, retry, &log, &wall, /*seed=*/5, &faults);
  // Heavy fault pressure with a tight retry budget: faults must surface in
  // the stats, and some work items must exhaust their attempts.
  EXPECT_GT(stats.injected_faults, 0);
  EXPECT_GT(stats.aborted, 0);
  EXPECT_GT(stats.retries_exhausted, 0);
  EXPECT_EQ(stats.injected_faults, faults.stats().injected);
}

}  // namespace
}  // namespace semcor
