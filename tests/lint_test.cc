// Tests for the .sem program parser and the semcor_lint analysis layer
// (ISSUE 8): parse round-trips, under-leveled errors naming the rejecting
// theorem, over-isolation warnings, advice notes, and renderer output.

#include <string>

#include <gtest/gtest.h>

#include "sem/lint/lint.h"
#include "sem/lint/parse_program.h"

namespace semcor {
namespace {

// A two-transaction banking application (Figure 1 shape, one account).
// Withdraw_sav needs REPEATABLE READ, Deposit_sav needs RC-FCW.
const char kBankingSem[] = R"(// test fixture
application banking

invariant acct_sav + acct_ch >= 0

txn Withdraw_sav {
  level %WITHDRAW%
  scenario w = 2
  requires $w >= 0
  logical SAV0 = acct_sav

  pre acct_sav + acct_ch >= 0 && $w >= 0
  read Sav := acct_sav
  pre acct_sav + acct_ch >= 0 && $w >= 0 && acct_sav >= $Sav && $Sav == #SAV0
  read Ch := acct_ch
  pre acct_sav + acct_ch >= $Sav + $Ch && $w >= 0 && acct_ch >= $Ch && $Sav == #SAV0
  if $Sav + $Ch >= $w {
    pre acct_sav + acct_ch >= $Sav + $Ch && $w >= 0 && acct_ch >= $Ch && $Sav == #SAV0 && $Sav + $Ch >= $w
    write acct_sav := $Sav - $w
  }
  ensures $Sav + $Ch >= $w => acct_sav == #SAV0 - $w
}

txn Deposit_sav {
  level %DEPOSIT%
  scenario d = 3
  requires $d >= 0

  pre acct_sav + acct_ch >= 0 && $d >= 0
  read Sav := acct_sav
  pre acct_sav + acct_ch >= 0 && $d >= 0 && acct_sav >= $Sav
  write acct_sav := $Sav + $d
}
)";

// The mirror withdrawal (Figure 1's Withdraw_ch): reads both balances,
// debits the checking account. Appending it to the fixture creates the
// Example 3 write-skew pair, which makes SNAPSHOT unsafe for both
// withdrawals while SSI stays correct.
const char kWithdrawChSem[] = R"(
txn Withdraw_ch {
  level REPEATABLE READ
  scenario w = 2
  requires $w >= 0
  logical CH0 = acct_ch

  pre acct_sav + acct_ch >= 0 && $w >= 0
  read Sav := acct_sav
  pre acct_sav + acct_ch >= 0 && $w >= 0 && acct_sav >= $Sav
  read Ch := acct_ch
  pre acct_sav + acct_ch >= $Sav + $Ch && $w >= 0 && acct_sav >= $Sav && $Ch == #CH0
  if $Sav + $Ch >= $w {
    pre acct_sav + acct_ch >= $Sav + $Ch && $w >= 0 && acct_sav >= $Sav && $Ch == #CH0 && $Sav + $Ch >= $w
    write acct_ch := $Ch - $w
  }
  ensures $Sav + $Ch >= $w => acct_ch == #CH0 - $w
}
)";

std::string Fixture(const std::string& withdraw, const std::string& deposit) {
  std::string text = kBankingSem;
  auto replace = [&text](const std::string& from, const std::string& to) {
    const size_t pos = text.find(from);
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, from.size(), to);
  };
  replace("%WITHDRAW%", withdraw);
  replace("%DEPOSIT%", deposit);
  return text;
}

ParsedApplication MustParse(const std::string& text) {
  Result<ParsedApplication> parsed = ParseApplication(text, "test.sem");
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed.value();
}

TEST(LintParseTest, RoundTripsStructure) {
  ParsedApplication parsed =
      MustParse(Fixture("REPEATABLE READ", "READ COMMITTED FCW"));
  EXPECT_EQ(parsed.app.name, "banking");
  ASSERT_EQ(parsed.app.types.size(), 2u);
  ASSERT_EQ(parsed.txns.size(), 2u);
  EXPECT_EQ(parsed.txns[0].name, "Withdraw_sav");
  EXPECT_TRUE(parsed.txns[0].has_level);
  EXPECT_EQ(parsed.txns[0].annotated, IsoLevel::kRepeatableRead);
  EXPECT_EQ(parsed.txns[1].annotated, IsoLevel::kReadCommittedFcw);
  // Statement lines survive into the instantiated program (diagnostics
  // anchor on them).
  const TxnProgram prog = parsed.app.types[0].make(
      parsed.app.types[0].analysis_scenarios.front());
  ASSERT_FALSE(prog.body.empty());
  EXPECT_GT(prog.body.front()->line, 0);
}

TEST(LintParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseApplication("txn X {", "bad.sem").ok());
  EXPECT_FALSE(
      ParseApplication("application a\ntxn X {\n  level BOGUS\n}\n", "bad.sem")
          .ok());
  // Statements outside a txn block are errors, and the message carries the
  // file:line prefix compilers and editors expect.
  Result<ParsedApplication> r =
      ParseApplication("application a\nread X := item\n", "bad.sem");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("bad.sem:2"), std::string::npos);
}

TEST(LintTest, CorrectAnnotationsAreClean) {
  LintReport report = LintApplication(
      MustParse(Fixture("REPEATABLE READ", "READ COMMITTED FCW")));
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.errors, 0);
  for (const LintDiagnostic& d : report.diagnostics) {
    EXPECT_NE(d.rule, "under-leveled") << d.message;
  }
}

TEST(LintTest, UnderLeveledNamesRejectingTheorem) {
  LintReport report = LintApplication(
      MustParse(Fixture("READ UNCOMMITTED", "READ COMMITTED FCW")));
  EXPECT_FALSE(report.ok());
  ASSERT_GE(report.errors, 1);
  const LintDiagnostic* found = nullptr;
  for (const LintDiagnostic& d : report.diagnostics) {
    if (d.rule == "under-leveled" && d.txn == "Withdraw_sav") found = &d;
  }
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->severity, LintDiagnostic::Severity::kError);
  EXPECT_EQ(found->annotated, IsoLevel::kReadUncommitted);
  EXPECT_EQ(found->required, IsoLevel::kRepeatableRead);
  // The rejecting theorem is the one governing the *annotated* level.
  EXPECT_EQ(found->theorem, "Thm 1");
  EXPECT_GT(found->line, 0);
  EXPECT_FALSE(found->assertion.empty());
  EXPECT_NE(found->message.find("Thm 1"), std::string::npos);
  EXPECT_NE(found->message.find("rejected"), std::string::npos);
  EXPECT_NE(found->message.find("requires REPEATABLE-READ"),
            std::string::npos);
}

TEST(LintTest, OverIsolationWarns) {
  LintReport report = LintApplication(
      MustParse(Fixture("SERIALIZABLE", "READ COMMITTED FCW")));
  EXPECT_TRUE(report.ok());  // over-isolation is correct, just wasteful
  ASSERT_GE(report.warnings, 1);
  bool found = false;
  for (const LintDiagnostic& d : report.diagnostics) {
    if (d.rule == "over-isolated" && d.txn == "Withdraw_sav") {
      found = true;
      EXPECT_EQ(d.severity, LintDiagnostic::Severity::kWarning);
      EXPECT_EQ(d.required, IsoLevel::kRepeatableRead);
    }
  }
  EXPECT_TRUE(found);
}

TEST(LintTest, UnannotatedTxnGetsAdviceNote) {
  // Drop Deposit_sav's level line entirely.
  std::string text = Fixture("REPEATABLE READ", "READ COMMITTED FCW");
  const size_t pos = text.find("  level READ COMMITTED FCW\n");
  ASSERT_NE(pos, std::string::npos);
  text.erase(pos, std::string("  level READ COMMITTED FCW\n").size());
  LintReport report = LintApplication(MustParse(text));
  EXPECT_TRUE(report.ok());
  bool advice_note = false;
  for (const LintDiagnostic& d : report.diagnostics) {
    if (d.rule == "advice" && d.txn == "Deposit_sav") advice_note = true;
  }
  EXPECT_TRUE(advice_note);
}

TEST(LintTest, SnapshotAnnotationOnWriteSkewSuggestsSsi) {
  // Withdraw_sav annotated SNAPSHOT: rejected (write skew), and because SSI
  // is the configuration that keeps the snapshot reads safe, the diagnostic
  // and the machine-readable advice both say so.
  LintReport report = LintApplication(MustParse(
      Fixture("SNAPSHOT", "READ COMMITTED FCW") + kWithdrawChSem));
  EXPECT_FALSE(report.ok());
  const LintDiagnostic* found = nullptr;
  for (const LintDiagnostic& d : report.diagnostics) {
    if (d.rule == "under-leveled" && d.txn == "Withdraw_sav") found = &d;
  }
  ASSERT_NE(found, nullptr);
  EXPECT_NE(found->message.find("SSI would keep snapshot reads safe"),
            std::string::npos) << found->message;

  const std::string json = RenderLintJson(report);
  EXPECT_NE(json.find("\"ssi_recommended\":true"), std::string::npos) << json;
}

TEST(LintTest, UnannotatedWriteSkewNoteRecommendsSsi) {
  std::string text =
      Fixture("REPEATABLE READ", "READ COMMITTED FCW") + kWithdrawChSem;
  const size_t pos = text.find("  level REPEATABLE READ\n");
  ASSERT_NE(pos, std::string::npos);
  text.erase(pos, std::string("  level REPEATABLE READ\n").size());
  LintReport report = LintApplication(MustParse(text));
  EXPECT_TRUE(report.ok());
  const LintDiagnostic* note = nullptr;
  for (const LintDiagnostic& d : report.diagnostics) {
    if (d.rule == "advice" && d.txn == "Withdraw_sav") note = &d;
  }
  ASSERT_NE(note, nullptr);
  EXPECT_NE(note->message.find(
                "SSI recommended (write skew is the only SNAPSHOT hazard)"),
            std::string::npos)
      << note->message;
}

TEST(LintTest, RenderersIncludeDiagnosticsAndSummary) {
  LintReport report = LintApplication(
      MustParse(Fixture("READ UNCOMMITTED", "READ COMMITTED FCW")));
  const std::string text = RenderLintText(report);
  EXPECT_NE(text.find("test.sem:"), std::string::npos);
  EXPECT_NE(text.find("error:"), std::string::npos);
  EXPECT_NE(text.find("pair checks"), std::string::npos);

  const std::string json = RenderLintJson(report);
  EXPECT_NE(json.find("\"diagnostics\""), std::string::npos);
  EXPECT_NE(json.find("\"under-leveled\""), std::string::npos);
  EXPECT_NE(json.find("\"summary\""), std::string::npos);

  const std::string sarif = RenderLintSarif(report);
  EXPECT_NE(sarif.find("\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("semcor-under-leveled"), std::string::npos);
}

}  // namespace
}  // namespace semcor
