// Network-boundary chaos tests: the DeadlineQueue timer primitive, the
// client's deterministic backoff schedule, server-side deadlines (txn and
// idle timeouts over the wire), graceful drain, mid-transaction disconnect
// cleanup (locks released, inflight drains to zero), and the ChaosProxy —
// seeded frame drops/truncation/duplication/splitting between a real client
// and a real server. The acceptance property throughout: the server never
// hangs or crashes, every torn-down transaction rolls back fully, and the
// workload invariant holds once the dust settles.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "net/chaos.h"
#include "net/client.h"
#include "net/deadline.h"
#include "net/server.h"
#include "net/wire.h"

namespace semcor::net {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

// ---------------------------------------------------------------------------
// DeadlineQueue.
// ---------------------------------------------------------------------------

TEST(DeadlineQueueTest, FiresInDeadlineOrderWithFifoTies) {
  DeadlineQueue q;
  const MonoTime t0 = MonoClock::now();
  std::vector<int> fired;
  q.ScheduleAt(t0 + milliseconds(30), [&] { fired.push_back(3); });
  q.ScheduleAt(t0 + milliseconds(10), [&] { fired.push_back(1); });
  q.ScheduleAt(t0 + milliseconds(10), [&] { fired.push_back(2); });  // tie

  ASSERT_TRUE(q.NextDeadline().has_value());
  EXPECT_EQ(*q.NextDeadline(), t0 + milliseconds(10));

  q.FireDue(t0 + milliseconds(5));
  EXPECT_TRUE(fired.empty());
  q.FireDue(t0 + milliseconds(10));
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));  // ties fire in schedule order
  q.FireDue(t0 + milliseconds(60));
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_FALSE(q.NextDeadline().has_value());
  EXPECT_EQ(q.live(), 0u);
}

TEST(DeadlineQueueTest, CancelAndReentrantScheduling) {
  DeadlineQueue q;
  const MonoTime t0 = MonoClock::now();
  std::vector<int> fired;
  const DeadlineQueue::TimerId a = q.ScheduleAt(t0 + milliseconds(1), [&] {
    fired.push_back(1);
    // Re-entrant schedule from inside a callback must be safe — and a timer
    // due at the current pass still fires in this pass.
    q.ScheduleAt(t0 + milliseconds(1), [&] { fired.push_back(2); });
  });
  const DeadlineQueue::TimerId b =
      q.ScheduleAt(t0 + milliseconds(2), [&] { fired.push_back(99); });
  EXPECT_TRUE(q.Cancel(b));
  EXPECT_FALSE(q.Cancel(b));  // already gone
  (void)a;

  q.FireDue(t0 + milliseconds(5));
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  // Cancelled entries lazily drain: the queue reports no live timers.
  EXPECT_EQ(q.live(), 0u);
  EXPECT_FALSE(q.NextDeadline().has_value());
}

// ---------------------------------------------------------------------------
// Client backoff schedule.
// ---------------------------------------------------------------------------

TEST(BackoffTest, DeterministicExponentialWithJitter) {
  ClientOptions opts;
  opts.backoff_base_ms = 2;
  opts.backoff_max_ms = 64;
  opts.backoff_seed = 7;
  Client a(opts), b(opts);

  std::vector<uint32_t> sa, sb;
  for (int i = 0; i < 12; ++i) {
    sa.push_back(a.NextBackoffMs(i, 0));
    sb.push_back(b.NextBackoffMs(i, 0));
  }
  EXPECT_EQ(sa, sb);  // same seed, same schedule — replayable retries
  for (int i = 0; i < 12; ++i) {
    const uint32_t ceiling =
        std::min<uint32_t>(opts.backoff_max_ms, 2u << std::min(i, 16));
    EXPECT_GE(sa[i], ceiling / 2) << i;   // equal-jitter floor
    EXPECT_LE(sa[i], ceiling) << i;       // capped
  }
  // Late attempts sit at the cap's jitter band, early ones far below it.
  EXPECT_LT(sa[0], 3u);
  EXPECT_GE(sa[11], 32u);

  // The server's retry-after hint is a floor, never ignored.
  EXPECT_GE(a.NextBackoffMs(0, 50), 50u);

  ClientOptions other = opts;
  other.backoff_seed = 8;
  Client c(other);
  std::vector<uint32_t> sc;
  for (int i = 0; i < 12; ++i) sc.push_back(c.NextBackoffMs(i, 0));
  EXPECT_NE(sc, sa);  // different seeds decorrelate
}

// ---------------------------------------------------------------------------
// Server deadlines over the wire.
// ---------------------------------------------------------------------------

ServerOptions BankingOptions() {
  ServerOptions options;
  options.workload = "banking";
  options.workers = 2;
  return options;
}

Client MakeClient(uint16_t port) {
  ClientOptions copts;
  copts.port = port;
  copts.recv_timeout_ms = 20000;  // a wedged server fails the test, fast
  return Client(copts);
}

/// Polls the server until no transaction is in flight (all cleanup ran).
bool DrainsInflight(Server& server, int timeout_ms = 5000) {
  for (int i = 0; i < timeout_ms; ++i) {
    if (server.Metrics().inflight == 0) return true;
    std::this_thread::sleep_for(milliseconds(1));
  }
  return false;
}

TEST(DeadlineTest, TxnTimeoutAbortsParkedTransaction) {
  ServerOptions options = BankingOptions();
  options.txn_timeout_us = 50'000;  // 50ms
  Server server(options);
  ASSERT_TRUE(server.Start().ok());
  Client client = MakeClient(server.port());
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.Hello().ok());

  // BEGIN, then park holding the slot well past the deadline. The sweep
  // force-aborts server-side; the next request is answered with the timeout
  // abort instead of hanging or kBadState.
  Result<BeginResult> begin =
      client.Begin("Withdraw_sav", kNegotiateLevel, {{"i", 0}, {"w", 1}});
  ASSERT_TRUE(begin.ok()) << begin.status().ToString();
  ASSERT_TRUE(begin.value().admitted);
  std::this_thread::sleep_for(milliseconds(300));

  Result<StepResp> step = client.Stmt();
  ASSERT_TRUE(step.ok()) << step.status().ToString();
  EXPECT_EQ(static_cast<StepWire>(step.value().outcome), StepWire::kAborted);
  EXPECT_NE(step.value().detail.find("transaction exceeded"),
            std::string::npos)
      << step.value().detail;

  EXPECT_TRUE(DrainsInflight(server));
  const ServerMetricsSnapshot m = server.Metrics();
  EXPECT_GE(m.txn_timeouts, 1L);
  EXPECT_EQ(m.Committed(), 0);
  EXPECT_TRUE(server.InvariantHolds());

  // The session itself survives: a fresh transaction commits.
  Result<TxnResult> run =
      client.RunTxn("Withdraw_sav", kNegotiateLevel, {{"i", 0}, {"w", 1}});
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run.value().committed) << run.value().detail;
  server.Stop();
}

TEST(DeadlineTest, IdleSessionIsReapedWithTimeoutFrame) {
  ServerOptions options = BankingOptions();
  options.idle_timeout_us = 50'000;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());
  Client client = MakeClient(server.port());
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.Hello().ok());

  // Stop sending; the server owes us a TIMEOUT(idle) frame and a close —
  // never a silent hang.
  Frame frame;
  Status s = client.RecvFrame(&frame);
  if (s.ok()) {
    EXPECT_EQ(frame.type, MsgType::kTimeout);
    Result<TimeoutResp> to = TimeoutResp::Decode(frame.payload);
    ASSERT_TRUE(to.ok());
    EXPECT_EQ(to.value().what, static_cast<uint8_t>(TimeoutKind::kIdle));
    // After the frame, EOF.
    EXPECT_FALSE(client.RecvFrame(&frame).ok());
  } else {
    // The reap may close before our read lands; either way no hang.
    EXPECT_EQ(s.code(), Code::kAborted);
  }
  EXPECT_TRUE(DrainsInflight(server));
  EXPECT_GE(server.Metrics().idle_timeouts, 1L);
  server.Stop();
}

TEST(DeadlineTest, DrainFinishesInflightAndRefusesNewWork) {
  ServerOptions options = BankingOptions();
  options.drain_timeout_us = 3'000'000;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());
  // Two sessions established before the SIGTERM-equivalent arrives: one
  // holding an in-flight transaction, one idle. (New *connections* are
  // refused outright once draining — the listener closes — so the
  // kShuttingDown path is about already-connected sessions.)
  Client inflight_client = MakeClient(server.port());
  ASSERT_TRUE(inflight_client.Connect().ok());
  ASSERT_TRUE(inflight_client.Hello().ok());
  Client idle_client = MakeClient(server.port());
  ASSERT_TRUE(idle_client.Connect().ok());
  ASSERT_TRUE(idle_client.Hello().ok());

  Result<BeginResult> begin = inflight_client.Begin(
      "Withdraw_sav", kNegotiateLevel, {{"i", 0}, {"w", 1}});
  ASSERT_TRUE(begin.ok());
  ASSERT_TRUE(begin.value().admitted);
  server.RequestDrain();
  std::this_thread::sleep_for(milliseconds(50));

  // New transactions are refused with kShuttingDown while draining (the
  // in-flight one keeps the drain from completing under us).
  Result<BeginResult> refused =
      idle_client.Begin("Withdraw_sav", kNegotiateLevel, {{"i", 1}, {"w", 1}});
  if (refused.ok()) {
    FAIL() << "BEGIN admitted during drain";
  } else {
    EXPECT_NE(refused.status().ToString().find("draining"),
              std::string::npos)
        << refused.status().ToString();
  }

  // The in-flight transaction still gets to finish cleanly.
  Result<StepResp> step = inflight_client.Stmt();
  ASSERT_TRUE(step.ok()) << step.status().ToString();
  while (static_cast<StepWire>(step.value().outcome) != StepWire::kBodyDone) {
    ASSERT_EQ(static_cast<StepWire>(step.value().outcome), StepWire::kRunning);
    step = inflight_client.Stmt();
    ASSERT_TRUE(step.ok());
  }
  step = inflight_client.Commit();
  ASSERT_TRUE(step.ok()) << step.status().ToString();
  EXPECT_EQ(static_cast<StepWire>(step.value().outcome), StepWire::kCommitted);

  // With nothing left in flight the loop stops on its own.
  server.WaitUntilStopped();
  server.Stop();
  const ServerMetricsSnapshot m = server.Metrics();
  EXPECT_EQ(m.Committed(), 1);
  EXPECT_GE(m.drain_rejects, 1L);
  EXPECT_TRUE(server.InvariantHolds());
}

// ---------------------------------------------------------------------------
// Mid-transaction disconnect (the leak regression).
// ---------------------------------------------------------------------------

TEST(DisconnectTest, MidTxnDisconnectRollsBackAndReleasesLocks) {
  ServerOptions options = BankingOptions();
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  {
    Client client = MakeClient(server.port());
    ASSERT_TRUE(client.Connect().ok());
    ASSERT_TRUE(client.Hello().ok());
    Result<BeginResult> begin =
        client.Begin("Withdraw_sav", kNegotiateLevel, {{"i", 0}, {"w", 1}});
    ASSERT_TRUE(begin.ok());
    ASSERT_TRUE(begin.value().admitted);
    // Step partway so the transaction holds real locks, then vanish.
    Result<StepResp> step = client.Stmt(1);
    ASSERT_TRUE(step.ok());
    client.Close();
  }

  // The server must notice the EOF, roll the transaction back, and release
  // its locks: inflight drains to zero...
  EXPECT_TRUE(DrainsInflight(server));

  // ...and a second client can immediately run the same accounts to commit
  // (stuck locks would park this in kBlocked retries forever).
  Client fresh = MakeClient(server.port());
  ASSERT_TRUE(fresh.Connect().ok());
  ASSERT_TRUE(fresh.Hello().ok());
  Result<TxnResult> run =
      fresh.RunTxn("Withdraw_sav", kNegotiateLevel, {{"i", 0}, {"w", 1}});
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run.value().committed) << run.value().detail;

  const ServerMetricsSnapshot m = server.Metrics();
  EXPECT_EQ(m.Committed(), 1);  // the abandoned txn never committed
  EXPECT_TRUE(server.InvariantHolds());
  server.Stop();
}

// ---------------------------------------------------------------------------
// ChaosProxy: frame mangling between a live client and server.
// ---------------------------------------------------------------------------

TEST(ChaosProxyTest, SplitFramesReassembleByteByByte) {
  Server server(BankingOptions());
  ASSERT_TRUE(server.Start().ok());
  ChaosOptions copts;
  copts.upstream_port = server.port();
  copts.split_bytes = 3;  // every frame arrives in 3-byte shards
  ChaosProxy proxy(copts);
  ASSERT_TRUE(proxy.Start().ok());

  Client client = MakeClient(proxy.port());
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.Hello().ok());
  for (int i = 0; i < 5; ++i) {
    Result<TxnResult> run = client.RunTxn("Withdraw_sav", kNegotiateLevel,
                                          {{"i", i % 4}, {"w", 1}});
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_TRUE(run.value().committed) << run.value().detail;
  }
  EXPECT_GT(proxy.Stats().chunks, 0L);
  proxy.Stop();
  EXPECT_TRUE(DrainsInflight(server));
  EXPECT_TRUE(server.InvariantHolds());
  server.Stop();
}

TEST(ChaosProxyTest, TruncatedFrameTearsDownSessionCleanly) {
  // Satellite: FrameParser + session teardown under a torn frame. The
  // truncate fault forwards half a chunk and drops the connection, so the
  // server's parser is left holding a partial frame at EOF — it must tear
  // the session down (rolling back any transaction) without wedging.
  Server server(BankingOptions());
  ASSERT_TRUE(server.Start().ok());
  ChaosOptions copts;
  copts.upstream_port = server.port();
  copts.seed = 5;
  copts.p_truncate = 1.0;  // second chunk onward: guaranteed torn
  ChaosProxy proxy(copts);
  ASSERT_TRUE(proxy.Start().ok());

  Client client = MakeClient(proxy.port());
  ASSERT_TRUE(client.Connect().ok());
  // Some call fails when its frame is torn mid-flight; which one depends on
  // the seed's first-chunk decision. Either way: no hang, clean teardown.
  Result<HelloResp> hello = client.Hello();
  if (hello.ok()) {
    (void)client.RunTxn("Withdraw_sav", kNegotiateLevel, {{"i", 0}, {"w", 1}});
  }
  client.Close();
  proxy.Stop();

  EXPECT_TRUE(DrainsInflight(server));
  const ServerMetricsSnapshot m = server.Metrics();
  EXPECT_EQ(m.sessions_closed, m.sessions_accepted);
  EXPECT_TRUE(server.InvariantHolds());
  server.Stop();
}

TEST(ChaosProxyTest, SeededFaultSoakNeverWedgesTheServer) {
  // The acceptance soak in miniature: many clients, every chaos knob on.
  // Individual transactions may fail arbitrarily; the server must survive
  // all of it — every torn-down transaction rolled back, inflight zero,
  // invariant intact — and still serve a clean client afterwards.
  Server server(BankingOptions());
  ASSERT_TRUE(server.Start().ok());
  ChaosOptions copts;
  copts.upstream_port = server.port();
  copts.seed = 1234;
  copts.p_close = 0.04;
  copts.p_truncate = 0.02;
  copts.p_duplicate = 0.02;
  copts.p_delay = 0.05;
  copts.delay_ms = 2;
  copts.split_bytes = 7;
  ChaosProxy proxy(copts);
  ASSERT_TRUE(proxy.Start().ok());

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 12; ++i) {
        ClientOptions cl;
        cl.port = proxy.port();
        cl.recv_timeout_ms = 10000;
        cl.backoff_seed = static_cast<uint64_t>(t) * 100 + i;
        Client client(cl);
        if (!client.Connect().ok()) continue;
        if (!client.Hello().ok()) continue;
        // Outcomes are whatever chaos makes them; only liveness matters.
        (void)client.RunTxn("Withdraw_sav", kNegotiateLevel,
                            {{"i", (t * 12 + i) % 4}, {"w", 1}});
      }
    });
  }
  for (auto& th : threads) th.join();
  proxy.Stop();

  EXPECT_TRUE(DrainsInflight(server));
  const ChaosStats cs = proxy.Stats();
  EXPECT_GT(cs.connections, 0L);
  EXPECT_GT(cs.closes + cs.truncates + cs.duplicates, 0L);

  // A clean (direct) client still gets normal service.
  Client fresh = MakeClient(server.port());
  ASSERT_TRUE(fresh.Connect().ok());
  ASSERT_TRUE(fresh.Hello().ok());
  Result<TxnResult> run =
      fresh.RunTxn("Withdraw_sav", kNegotiateLevel, {{"i", 0}, {"w", 1}});
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run.value().committed) << run.value().detail;
  EXPECT_TRUE(server.InvariantHolds());
  server.Stop();
}

}  // namespace
}  // namespace semcor::net
