#include <gtest/gtest.h>

#include "explore/crosscheck.h"
#include "explore/enumerate.h"
#include "explore/explorer.h"
#include "explore/fuzz.h"
#include "explore/shrink.h"
#include "workload/workload.h"

namespace semcor {
namespace {

/// The classic write-skew interleaving of Example 3 as choice hints:
/// T1 reads both balances, T2 reads both balances, then both decide and
/// write. Choices per Withdraw: Read, Read, If-guard, Write, commit.
const Schedule kClassicWriteSkew = {0, 0, 1, 1, 0, 0, 0, 1, 1, 1};

std::unique_ptr<ExploreSession> BankingSession(const std::string& mix_name,
                                               IsoLevel level) {
  Workload w = MakeBankingWorkload();
  const ExploreMix* mix = w.FindExploreMix(mix_name);
  EXPECT_NE(mix, nullptr) << mix_name;
  auto session = std::make_unique<ExploreSession>();
  EXPECT_TRUE(session->Init(w, *mix, level).ok());
  return session;
}

TEST(ExploreSession, ClassicWriteSkewIsAnomalousAtSnapshot) {
  auto session = BankingSession("write_skew", IsoLevel::kSnapshot);
  RunResult r = session->Run(kClassicWriteSkew);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.committed, 2);
  EXPECT_TRUE(r.anomalous);
  EXPECT_EQ(EventTrace(r.events), "r1 r1 r2 r2 w1 w2");
  EXPECT_EQ(r.preemptions, 2);  // 0->1 (T1 active), 1->0 (T2 active)
}

TEST(ExploreSession, ReplayIsDeterministic) {
  auto session = BankingSession("write_skew", IsoLevel::kSnapshot);
  RunResult a = session->Run(kClassicWriteSkew);
  RunResult b = session->Run(kClassicWriteSkew);
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_EQ(EventTrace(a.events), EventTrace(b.events));
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.anomalous, b.anomalous);
  EXPECT_EQ(a.Signature(), b.Signature());
}

TEST(ExploreSession, LazyBeginSeesEarlierCommits) {
  // Run the two withdrawals serially. Because transactions begin (and
  // SNAPSHOT captures its read view) only at their first scheduled step,
  // the second withdrawal sees the first one's committed overdraft, its
  // guard fails, and the outcome is semantically correct.
  auto session = BankingSession("write_skew", IsoLevel::kSnapshot);
  RunResult r = session->Run({0, 0, 0, 0, 0, 1, 1, 1, 1});
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.committed, 2);  // second one commits without writing
  EXPECT_FALSE(r.anomalous);
  EXPECT_EQ(EventTrace(r.events), "r1 r1 w1 r2 r2");
}

TEST(ExploreSession, ScheduleExhaustionForceAborts) {
  auto session = BankingSession("write_skew", IsoLevel::kSnapshot);
  RunResult r = session->Run({0, 0, 1});  // nobody reaches commit
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.committed, 0);
  EXPECT_EQ(r.aborted, 2);
  EXPECT_FALSE(r.anomalous);  // nothing committed, initial state intact
}

TEST(Enumerate, CountsMatchClosedForm) {
  // Two independent deposits, three atomic steps each (read, write,
  // commit): C(6,3) = 20 interleavings; 2 serial ones; 6 with at most one
  // preemption.
  struct Case {
    int bound;
    int64_t want;
  };
  for (const Case& c : {Case{-1, 20}, Case{0, 2}, Case{1, 6}}) {
    auto session = BankingSession("disjoint_deposits", IsoLevel::kSnapshot);
    EnumerateOptions opts;
    opts.preemption_bound = c.bound;
    ScheduleSpace space(session.get(), opts);
    EnumerateStats stats = space.Enumerate([](const Schedule&,
                                              const RunResult&) {});
    EXPECT_EQ(stats.schedules, c.want) << "bound " << c.bound;
    EXPECT_EQ(stats.anomalies, 0) << "bound " << c.bound;
  }
}

TEST(Enumerate, SerializableWriteSkewSpaceIsClean) {
  auto session = BankingSession("write_skew", IsoLevel::kSerializable);
  ScheduleSpace space(session.get(), EnumerateOptions());
  EnumerateStats stats = space.Enumerate([](const Schedule&,
                                            const RunResult&) {});
  EXPECT_GT(stats.schedules, 0);
  EXPECT_EQ(stats.anomalies, 0);
}

TEST(Enumerate, SnapshotWriteSkewSpaceContainsAnomalies) {
  auto session = BankingSession("write_skew", IsoLevel::kSnapshot);
  ScheduleSpace space(session.get(), EnumerateOptions());
  EnumerateStats stats = space.Enumerate([](const Schedule&,
                                            const RunResult&) {});
  EXPECT_GT(stats.schedules, 0);
  EXPECT_GT(stats.anomalies, 0);
}

TEST(Fuzz, IndexedRunsAreSeedStable) {
  auto a = BankingSession("write_skew", IsoLevel::kSnapshot);
  auto b = BankingSession("write_skew", IsoLevel::kSnapshot);
  ScheduleFuzzer fa(a.get(), /*seed=*/7);
  ScheduleFuzzer fb(b.get(), /*seed=*/7);
  int anomalies = 0;
  for (int64_t i = 0; i < 50; ++i) {
    Schedule ha, hb;
    RunResult ra = fa.RunIndexed(i, &ha);
    RunResult rb = fb.RunIndexed(i, &hb);
    EXPECT_EQ(ha, hb) << "index " << i;
    EXPECT_EQ(ra.executed, rb.executed) << "index " << i;
    EXPECT_EQ(ra.anomalous, rb.anomalous) << "index " << i;
    EXPECT_TRUE(ra.complete) << "index " << i;
    if (ra.anomalous) ++anomalies;
  }
  // Write skew is dense in this space; random walks must trip over it.
  EXPECT_GT(anomalies, 0);
}

TEST(Shrink, RecoversClassicWitnessFromPaddedSchedule) {
  // The classic 10-choice write-skew schedule, interleaved with a third,
  // unrelated deposit and trailing no-op choices: 20 choices total. The
  // transaction-drop pass must eliminate the deposit wholesale and ddmin
  // must strip the padding, leaving exactly the classic witness.
  auto session = BankingSession("write_skew_padded", IsoLevel::kSnapshot);
  Schedule padded = kClassicWriteSkew;
  padded.insert(padded.end(), {2, 2, 2, 2, 2, 2, 2, 2, 2, 2});
  RunResult before = session->Run(padded);
  ASSERT_TRUE(before.anomalous);
  ASSERT_TRUE(before.complete);

  Shrinker shrinker(session.get());
  Result<ShrinkResult> shrunk = shrinker.Minimize(padded);
  ASSERT_TRUE(shrunk.ok());
  EXPECT_EQ(shrunk.value().schedule, kClassicWriteSkew);
  EXPECT_EQ(EventTrace(shrunk.value().result.events),
            "r1 r1 r2 r2 w1 w2");
  EXPECT_LE(shrunk.value().result.events.size(), 6u);
}

TEST(Shrink, RejectsNonAnomalousSchedule) {
  auto session = BankingSession("write_skew", IsoLevel::kSnapshot);
  Shrinker shrinker(session.get());
  EXPECT_FALSE(shrinker.Minimize({0, 0, 0, 0, 0, 1, 1, 1, 1}).ok());
}

TEST(Explorer, SnapshotFindsAndShrinksWriteSkew) {
  Workload w = MakeBankingWorkload();
  ExploreOptions opts;
  opts.level = IsoLevel::kSnapshot;
  opts.threads = 4;
  opts.budget = 2000;
  Explorer explorer(w, *w.FindExploreMix("write_skew"), opts);
  Result<ExploreReport> report = explorer.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().space_exhausted);
  EXPECT_GT(report.value().enumerated, 0);
  EXPECT_GT(report.value().anomalies, 0);
  ASSERT_FALSE(report.value().witnesses.empty());
  for (const ExploreWitness& witness : report.value().witnesses) {
    // Any 1-minimal write-skew witness drives both withdrawals to commit:
    // 5 productive choices each, 4 reads and 2 writes on the database.
    EXPECT_EQ(witness.schedule.size(), 10u) << witness.trace;
    RunResult replay = BankingSession("write_skew", IsoLevel::kSnapshot)
                           ->Run(witness.schedule);
    EXPECT_TRUE(replay.anomalous) << witness.trace;
    int reads = 0, writes = 0;
    for (const ScheduleEvent& e : replay.events) (e.write ? writes : reads)++;
    EXPECT_EQ(reads, 4) << witness.trace;
    EXPECT_EQ(writes, 2) << witness.trace;
  }
}

TEST(Explorer, SerializableFindsNoAnomalies) {
  Workload w = MakeBankingWorkload();
  ExploreOptions opts;
  opts.level = IsoLevel::kSerializable;
  opts.threads = 4;
  opts.budget = 2000;
  Explorer explorer(w, *w.FindExploreMix("write_skew"), opts);
  Result<ExploreReport> report = explorer.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report.value().schedules(), 0);
  EXPECT_EQ(report.value().anomalies, 0);
  EXPECT_TRUE(report.value().witnesses.empty());
}

TEST(Explorer, LostUpdateLevelSweep) {
  // Two deposits to one account: lost update strikes below REPEATABLE
  // READ; at RR the long read locks force a deadlock-abort instead, which
  // is semantically correct (the victim's effects vanish).
  Workload w = MakeBankingWorkload();
  for (IsoLevel level : {IsoLevel::kReadCommitted, IsoLevel::kRepeatableRead}) {
    ExploreOptions opts;
    opts.level = level;
    opts.threads = 2;
    opts.budget = 500;
    opts.fuzz = false;
    Explorer explorer(w, *w.FindExploreMix("lost_update"), opts);
    Result<ExploreReport> report = explorer.Run();
    ASSERT_TRUE(report.ok());
    EXPECT_GT(report.value().schedules(), 0);
    if (level == IsoLevel::kReadCommitted) {
      EXPECT_GT(report.value().anomalies, 0);
    } else {
      EXPECT_EQ(report.value().anomalies, 0);
    }
  }
}

TEST(FaultExploration, UndoReadWitnessFoundAndReproducible) {
  // Acceptance scenario for fault-driven exploration: banking write-skew at
  // READ UNCOMMITTED under a fixed seeded fault plan with schedulable
  // rollback. The explorer must find runs in which one transaction reads a
  // value of another that is mid-rollback (Theorem 1's undo-write hazard),
  // keep a witness of that class, stay consistent with the static verdict
  // (Theorem 1 rejects the level, so anomalies are expected, not unsound),
  // and reproduce the exact same witnesses across repeat runs and thread
  // counts.
  Workload w = MakeBankingWorkload();
  const ExploreMix* mix = w.FindExploreMix("write_skew");
  ASSERT_NE(mix, nullptr);

  ExploreOptions opts;
  opts.level = IsoLevel::kReadUncommitted;
  opts.budget = 3000;
  opts.seed = 42;
  opts.max_witnesses = 8;
  opts.faults = FaultPlan::Seeded(7);
  opts.schedulable_rollback = true;

  auto run_once = [&](int threads) {
    opts.threads = threads;
    Result<CrossCheckResult> r = CrossCheck(w, *mix, opts);
    EXPECT_TRUE(r.ok());
    return r.take();
  };
  auto witness_fingerprint = [](const CrossCheckResult& r) {
    std::string out;
    for (const ExploreWitness& wit : r.exploration.witnesses) {
      out += wit.signature + " " + ScheduleToString(wit.schedule) + " " +
             wit.trace + " " + std::to_string(wit.undo_dirty_reads) + "\n";
    }
    return out;
  };

  CrossCheckResult first = run_once(2);
  EXPECT_GT(first.exploration.injected_faults, 0);
  EXPECT_GT(first.exploration.undo_read_runs, 0);
  bool has_undo_witness = false;
  for (const ExploreWitness& wit : first.exploration.witnesses) {
    if (wit.undo_dirty_reads > 0) {
      has_undo_witness = true;
      EXPECT_NE(wit.signature.find("observed-mid-rollback"), std::string::npos);
    }
  }
  EXPECT_TRUE(has_undo_witness);
  // Theorem 1 rejects READ UNCOMMITTED for the withdrawals, and exploration
  // agrees there are anomalies: consistent, not unsound, not imprecise.
  EXPECT_FALSE(first.static_correct);
  EXPECT_GT(first.exploration.anomalies, 0);
  EXPECT_FALSE(first.unsound);
  EXPECT_FALSE(first.imprecise);

  // Same seed, same fault plan: bit-for-bit identical witnesses across a
  // repeat run and across thread counts.
  CrossCheckResult again = run_once(2);
  CrossCheckResult single = run_once(1);
  EXPECT_EQ(witness_fingerprint(first), witness_fingerprint(again));
  EXPECT_EQ(witness_fingerprint(first), witness_fingerprint(single));
  EXPECT_EQ(first.exploration.injected_faults,
            single.exploration.injected_faults);
  EXPECT_EQ(first.exploration.undo_read_runs,
            single.exploration.undo_read_runs);
}

TEST(Explorer, WitnessesIndependentOfLockShardCount) {
  // The sharded lock manager must not perturb deterministic replay: a
  // fixed-seed exploration of the banking and orders mixes has to produce
  // the same witness set and bit-for-bit identical traces whether each
  // session's manager runs 1, 2, or 4 shards (exploration is try-lock
  // only, and try-lock outcomes are a pure function of per-key state).
  struct Scenario {
    Workload workload;
    const char* mix;
    IsoLevel level;
  };
  std::vector<Scenario> scenarios;
  scenarios.push_back({MakeBankingWorkload(), "write_skew",
                       IsoLevel::kSnapshot});
  scenarios.push_back({MakeOrdersWorkload(false), "new_order_race",
                       IsoLevel::kReadCommitted});
  // SSI adds the rw-antidependency tracker to every run; its doom decisions
  // must be as replay-stable as the lock manager's try-lock outcomes.
  scenarios.push_back({MakeBankingWorkload(), "write_skew", IsoLevel::kSsi});
  for (const Scenario& scenario : scenarios) {
    const ExploreMix* mix = scenario.workload.FindExploreMix(scenario.mix);
    ASSERT_NE(mix, nullptr) << scenario.mix;
    std::string baseline;
    for (const size_t shards : {1u, 2u, 4u}) {
      ExploreOptions opts;
      opts.level = scenario.level;
      opts.threads = 2;
      opts.budget = 600;
      opts.seed = 42;
      opts.max_witnesses = 8;
      opts.lock_shards = shards;
      Result<ExploreReport> report =
          Explorer(scenario.workload, *mix, opts).Run();
      ASSERT_TRUE(report.ok()) << scenario.mix;
      std::string fingerprint;
      for (const ExploreWitness& wit : report.value().witnesses) {
        fingerprint += wit.signature + " " + ScheduleToString(wit.schedule) +
                       " " + wit.trace + "\n";
      }
      fingerprint += "anomalies=" +
                     std::to_string(report.value().anomalies) + " schedules=" +
                     std::to_string(report.value().schedules());
      if (baseline.empty()) {
        baseline = fingerprint;
        EXPECT_FALSE(baseline.empty());
      } else {
        EXPECT_EQ(fingerprint, baseline)
            << scenario.mix << " with " << shards << " shards";
      }
    }
  }
}

TEST(Explorer, SsiDeterministicAcrossThreadsAndSeeds) {
  // SSI's doom decisions depend on commit order, edge insertion order, and
  // GC timing — all of which must be a pure function of the schedule. For
  // each seed, witnesses AND the ssi abort counters (total / false-positive
  // / required split) have to come out bit-identical whether the explorer
  // runs 1, 2, or 4 worker threads.
  Workload w = MakeBankingWorkload();
  const ExploreMix* mix = w.FindExploreMix("write_skew");
  ASSERT_NE(mix, nullptr);
  for (const uint64_t seed : {7u, 42u}) {
    std::string baseline;
    for (const int threads : {1, 2, 4}) {
      ExploreOptions opts;
      opts.level = IsoLevel::kSsi;
      opts.threads = threads;
      opts.budget = 600;
      opts.seed = seed;
      opts.max_witnesses = 8;
      Result<ExploreReport> report = Explorer(w, *mix, opts).Run();
      ASSERT_TRUE(report.ok());
      std::string fingerprint;
      for (const ExploreWitness& wit : report.value().witnesses) {
        fingerprint += wit.signature + " " + ScheduleToString(wit.schedule) +
                       " " + wit.trace + "\n";
      }
      fingerprint +=
          "anomalies=" + std::to_string(report.value().anomalies) +
          " ssi=" + std::to_string(report.value().ssi_aborts) +
          " fp=" + std::to_string(report.value().ssi_false_positive_aborts) +
          " req=" + std::to_string(report.value().ssi_required_aborts) +
          " schedules=" + std::to_string(report.value().schedules());
      if (baseline.empty()) {
        baseline = fingerprint;
        // Write skew is SSI's bread and butter: the tracker must actually
        // fire on this mix, otherwise determinism is vacuous.
        EXPECT_GT(report.value().ssi_aborts, 0);
      } else {
        EXPECT_EQ(fingerprint, baseline)
            << "seed " << seed << " threads " << threads;
      }
    }
  }
}

TEST(CrossCheck, BankingSoundnessContract) {
  Workload w = MakeBankingWorkload();
  const ExploreMix* mix = w.FindExploreMix("write_skew");
  ASSERT_NE(mix, nullptr);

  ExploreOptions opts;
  opts.threads = 2;
  opts.budget = 500;

  // SERIALIZABLE: statically correct, and exploration must agree.
  opts.level = IsoLevel::kSerializable;
  Result<CrossCheckResult> serializable = CrossCheck(w, *mix, opts);
  ASSERT_TRUE(serializable.ok());
  EXPECT_TRUE(serializable.value().static_correct);
  EXPECT_EQ(serializable.value().exploration.anomalies, 0);
  EXPECT_FALSE(serializable.value().unsound);

  // SNAPSHOT: the pair condition fails statically AND exploration exhibits
  // the anomaly — consistent in the other direction.
  opts.level = IsoLevel::kSnapshot;
  Result<CrossCheckResult> snapshot = CrossCheck(w, *mix, opts);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_FALSE(snapshot.value().static_correct);
  EXPECT_GT(snapshot.value().exploration.anomalies, 0);
  // Write skew drives the combined balance negative: these are genuine
  // invariant violations, not mere replay divergence.
  EXPECT_GT(snapshot.value().exploration.invariant_anomalies, 0);
  EXPECT_FALSE(snapshot.value().unsound);
  EXPECT_FALSE(snapshot.value().imprecise);
}

// The §2/§6 story: under the basic business rule a lost MAXDATE update is
// semantically tolerated (duplicate delivery dates satisfy every rule), so
// READ COMMITTED is statically correct even though the final state diverges
// from any serial schedule. The cross-check must classify that divergence
// as oracle strictness, not unsoundness. The "one order per day" variant
// strengthens the invariant until the same interleaving violates it — and
// the static checker rejects READ COMMITTED in lockstep.
TEST(CrossCheck, OrdersReplayDivergenceIsNotUnsound) {
  ExploreOptions opts;
  opts.threads = 2;
  opts.budget = 300;
  opts.level = IsoLevel::kReadCommitted;

  Workload basic = MakeOrdersWorkload(/*one_order_per_day=*/false);
  const ExploreMix* mix = basic.FindExploreMix("new_order_race");
  ASSERT_NE(mix, nullptr);
  Result<CrossCheckResult> rc = CrossCheck(basic, *mix, opts);
  ASSERT_TRUE(rc.ok());
  EXPECT_TRUE(rc.value().static_correct);
  EXPECT_GT(rc.value().exploration.anomalies, 0);
  EXPECT_EQ(rc.value().exploration.invariant_anomalies, 0);
  EXPECT_FALSE(rc.value().unsound);
  EXPECT_TRUE(rc.value().replay_divergent);

  Workload unique = MakeOrdersWorkload(/*one_order_per_day=*/true);
  mix = unique.FindExploreMix("new_order_race");
  ASSERT_NE(mix, nullptr);

  // Same interleavings, stronger invariant: now they are real anomalies,
  // and the static side rejects the level too — consistent.
  Result<CrossCheckResult> rc_unique = CrossCheck(unique, *mix, opts);
  ASSERT_TRUE(rc_unique.ok());
  EXPECT_FALSE(rc_unique.value().static_correct);
  EXPECT_GT(rc_unique.value().exploration.invariant_anomalies, 0);
  EXPECT_FALSE(rc_unique.value().unsound);

  // First-committer-wins restores correctness dynamically and statically.
  opts.level = IsoLevel::kReadCommittedFcw;
  Result<CrossCheckResult> fcw = CrossCheck(unique, *mix, opts);
  ASSERT_TRUE(fcw.ok());
  EXPECT_TRUE(fcw.value().static_correct);
  EXPECT_EQ(fcw.value().exploration.anomalies, 0);
  EXPECT_FALSE(fcw.value().unsound);
  EXPECT_FALSE(fcw.value().replay_divergent);
}

}  // namespace
}  // namespace semcor
