#include <gtest/gtest.h>

#include "sem/prog/builder.h"
#include "txn/driver.h"
#include "sem/rt/oracle.h"
#include "workload/workload.h"

namespace semcor {
namespace {

std::shared_ptr<const TxnProgram> Program(const Workload& w,
                                          const std::string& type,
                                          std::map<std::string, Value> params) {
  for (const TransactionType& t : w.app.types) {
    if (t.name == type) {
      return std::make_shared<TxnProgram>(t.make(params));
    }
  }
  return nullptr;
}

class ScheduleTest : public ::testing::Test {
 protected:
  ScheduleTest() : mgr_(&store_, &locks_) {}

  Store store_;
  LockManager locks_;
  TxnManager mgr_;
  CommitLog log_;
};

TEST_F(ScheduleTest, SerialBankingExecution) {
  Workload w = MakeBankingWorkload();
  ASSERT_TRUE(w.setup(&store_).ok());
  StepDriver driver(&mgr_, &log_);
  driver.Add(Program(w, "Deposit_sav", {{"i", Value::Int(1)},
                                        {"d", Value::Int(5)}}),
             IsoLevel::kSerializable);
  driver.Add(Program(w, "Withdraw_sav", {{"i", Value::Int(1)},
                                         {"w", Value::Int(3)}}),
             IsoLevel::kSerializable);
  // Run txn 0 fully, then txn 1.
  while (!driver.run(0).Done()) driver.Step(0);
  while (!driver.run(1).Done()) driver.Step(1);
  EXPECT_EQ(driver.run(0).outcome(), StepOutcome::kCommitted);
  EXPECT_EQ(driver.run(1).outcome(), StepOutcome::kCommitted);
  // 10 + 5 - 3 = 12.
  EXPECT_EQ(store_.ReadItemCommitted("acct_sav[1].bal").value().AsInt(), 12);
  EXPECT_EQ(log_.size(), 2u);
}

TEST_F(ScheduleTest, WriteSkewUnderSnapshot) {
  Workload w = MakeBankingWorkload();
  ASSERT_TRUE(w.setup(&store_).ok());
  StepDriver driver(&mgr_, &log_);
  // Both withdraw 15 from account 1 (sav=10, ch=10: either alone is fine,
  // both violate sav+ch >= 0).
  driver.Add(Program(w, "Withdraw_sav", {{"i", Value::Int(1)},
                                         {"w", Value::Int(15)}}),
             IsoLevel::kSnapshot);
  driver.Add(Program(w, "Withdraw_ch", {{"i", Value::Int(1)},
                                        {"w", Value::Int(15)}}),
             IsoLevel::kSnapshot);
  driver.RunRoundRobin();
  EXPECT_EQ(driver.run(0).outcome(), StepOutcome::kCommitted);
  EXPECT_EQ(driver.run(1).outcome(), StepOutcome::kCommitted);
  const int64_t sav = store_.ReadItemCommitted("acct_sav[1].bal").value().AsInt();
  const int64_t ch = store_.ReadItemCommitted("acct_ch[1].bal").value().AsInt();
  EXPECT_LT(sav + ch, 0) << "write skew should violate the invariant";
}

TEST_F(ScheduleTest, WriteSkewPreventedAtSerializable) {
  Workload w = MakeBankingWorkload();
  ASSERT_TRUE(w.setup(&store_).ok());
  StepDriver driver(&mgr_, &log_);
  driver.Add(Program(w, "Withdraw_sav", {{"i", Value::Int(1)},
                                         {"w", Value::Int(15)}}),
             IsoLevel::kSerializable);
  driver.Add(Program(w, "Withdraw_ch", {{"i", Value::Int(1)},
                                        {"w", Value::Int(15)}}),
             IsoLevel::kSerializable);
  driver.RunRoundRobin();
  const int64_t sav = store_.ReadItemCommitted("acct_sav[1].bal").value().AsInt();
  const int64_t ch = store_.ReadItemCommitted("acct_ch[1].bal").value().AsInt();
  EXPECT_GE(sav + ch, 0);
}

TEST_F(ScheduleTest, SameItemConflictResolvedByFcwUnderSnapshot) {
  Workload w = MakeBankingWorkload();
  ASSERT_TRUE(w.setup(&store_).ok());
  StepDriver driver(&mgr_, &log_);
  driver.Add(Program(w, "Withdraw_sav", {{"i", Value::Int(1)},
                                         {"w", Value::Int(15)}}),
             IsoLevel::kSnapshot);
  driver.Add(Program(w, "Withdraw_sav", {{"i", Value::Int(1)},
                                         {"w", Value::Int(15)}}),
             IsoLevel::kSnapshot);
  driver.RunRoundRobin();
  // First-committer-wins: exactly one commits.
  const int committed = (driver.run(0).outcome() == StepOutcome::kCommitted) +
                        (driver.run(1).outcome() == StepOutcome::kCommitted);
  EXPECT_EQ(committed, 1);
  EXPECT_GE(store_.ReadItemCommitted("acct_sav[1].bal").value().AsInt() +
                store_.ReadItemCommitted("acct_ch[1].bal").value().AsInt(),
            0);
}

TEST_F(ScheduleTest, DirtyReadOfHalfUpdatedRecordAtReadUncommitted) {
  Workload w = MakePayrollWorkload();
  ASSERT_TRUE(w.setup(&store_).ok());
  StepDriver driver(&mgr_, &log_);
  driver.Add(Program(w, "Hours", {{"i", Value::Int(1)}, {"h", Value::Int(4)}}),
             IsoLevel::kReadCommitted);
  driver.Add(Program(w, "Print_Records", {{"i", Value::Int(1)}}),
             IsoLevel::kReadUncommitted);
  // Hours runs its first update, then Print reads between the two updates.
  ASSERT_EQ(driver.Step(0), StepOutcome::kRunning);  // update num_hrs
  ASSERT_EQ(driver.Step(1), StepOutcome::kRunning);  // dirty select
  const std::vector<Tuple>& rec = driver.run(1).txn().buffers.at("rec");
  ASSERT_EQ(rec.size(), 1u);
  // Inconsistent snapshot: num_hrs bumped, sal not yet.
  EXPECT_NE(rec[0].at("sal").AsInt(), 10 * rec[0].at("num_hrs").AsInt());
}

TEST_F(ScheduleTest, ReadCommittedSeesConsistentRecord) {
  Workload w = MakePayrollWorkload();
  ASSERT_TRUE(w.setup(&store_).ok());
  StepDriver driver(&mgr_, &log_);
  driver.Add(Program(w, "Hours", {{"i", Value::Int(1)}, {"h", Value::Int(4)}}),
             IsoLevel::kReadCommitted);
  driver.Add(Program(w, "Print_Records", {{"i", Value::Int(1)}}),
             IsoLevel::kReadCommitted);
  ASSERT_EQ(driver.Step(0), StepOutcome::kRunning);  // update num_hrs (X lock)
  // Print's select blocks on the row X lock.
  EXPECT_EQ(driver.Step(1), StepOutcome::kBlocked);
  driver.RunRoundRobin();
  ASSERT_EQ(driver.run(1).outcome(), StepOutcome::kCommitted);
  const std::vector<Tuple>& rec = driver.run(1).txn().buffers.at("rec");
  ASSERT_EQ(rec.size(), 1u);
  EXPECT_EQ(rec[0].at("sal").AsInt(), 10 * rec[0].at("num_hrs").AsInt());
}

TEST_F(ScheduleTest, LostUpdateAtReadCommitted) {
  Workload w = MakeBankingWorkload();
  ASSERT_TRUE(w.setup(&store_).ok());
  StepDriver driver(&mgr_, &log_);
  driver.Add(Program(w, "Deposit_sav", {{"i", Value::Int(1)},
                                        {"d", Value::Int(5)}}),
             IsoLevel::kReadCommitted);
  driver.Add(Program(w, "Deposit_sav", {{"i", Value::Int(1)},
                                        {"d", Value::Int(7)}}),
             IsoLevel::kReadCommitted);
  // Interleave: both read, then both write.
  driver.RunSchedule({0, 1});  // both read 10
  driver.RunRoundRobin();
  // One deposit is lost: 10+5 or 10+7, not 10+5+7.
  const int64_t bal = store_.ReadItemCommitted("acct_sav[1].bal").value().AsInt();
  EXPECT_TRUE(bal == 15 || bal == 17) << bal;
}

TEST_F(ScheduleTest, LostUpdatePreventedByFcw) {
  Workload w = MakeBankingWorkload();
  ASSERT_TRUE(w.setup(&store_).ok());
  StepDriver driver(&mgr_, &log_);
  driver.Add(Program(w, "Deposit_sav", {{"i", Value::Int(1)},
                                        {"d", Value::Int(5)}}),
             IsoLevel::kReadCommittedFcw);
  driver.Add(Program(w, "Deposit_sav", {{"i", Value::Int(1)},
                                        {"d", Value::Int(7)}}),
             IsoLevel::kReadCommittedFcw);
  driver.RunSchedule({0, 1});  // both read 10
  driver.RunRoundRobin();
  const int committed = (driver.run(0).outcome() == StepOutcome::kCommitted) +
                        (driver.run(1).outcome() == StepOutcome::kCommitted);
  EXPECT_EQ(committed, 1);  // the stale writer aborted
  const int64_t bal = store_.ReadItemCommitted("acct_sav[1].bal").value().AsInt();
  EXPECT_TRUE(bal == 15 || bal == 17) << bal;
}

TEST_F(ScheduleTest, DeadlockResolvedInRoundRobin) {
  ASSERT_TRUE(store_.CreateItem("a", Value::Int(0)).ok());
  ASSERT_TRUE(store_.CreateItem("b", Value::Int(0)).ok());
  auto make = [](const std::string& first, const std::string& second) {
    ProgramBuilder b("Crossing");
    b.Read("X", first);
    b.Write(first, Add(Local("X"), Lit(int64_t{1})));
    b.Read("Y", second);
    b.Write(second, Add(Local("Y"), Lit(int64_t{1})));
    return std::make_shared<TxnProgram>(b.Build({}));
  };
  StepDriver driver(&mgr_, &log_);
  driver.Add(make("a", "b"), IsoLevel::kRepeatableRead);
  driver.Add(make("b", "a"), IsoLevel::kRepeatableRead);
  driver.RunRoundRobin();
  const int committed = (driver.run(0).outcome() == StepOutcome::kCommitted) +
                        (driver.run(1).outcome() == StepOutcome::kCommitted);
  EXPECT_EQ(committed, 1);  // one is the deadlock victim
}

TEST_F(ScheduleTest, NewOrderLostCounterUpdateAtReadCommitted) {
  Workload w = MakeOrdersWorkload(true);  // one-order-per-day rule
  ASSERT_TRUE(w.setup(&store_).ok());
  StepDriver driver(&mgr_, &log_);
  auto params = [](int info) {
    return std::map<std::string, Value>{{"customer", Value::Str("a")},
                                        {"address", Value::Str("addr")},
                                        {"order_info", Value::Int(info)}};
  };
  driver.Add(Program(w, "New_Order", params(101)), IsoLevel::kReadCommitted);
  driver.Add(Program(w, "New_Order", params(102)), IsoLevel::kReadCommitted);
  // Both read MAXDATE = 5 before either writes it.
  driver.RunSchedule({0, 1});
  driver.RunRoundRobin();
  // Both committed; the one-order-per-day rule is now broken:
  // 7 orders but maximum_date == 6.
  EXPECT_EQ(store_.CommittedTuples("ORDERS").size(), 7u);
  EXPECT_EQ(store_.ReadItemCommitted("maximum_date").value().AsInt(), 6);
}

TEST_F(ScheduleTest, NewOrderCounterRaceAbortedAtFcw) {
  Workload w = MakeOrdersWorkload(true);
  ASSERT_TRUE(w.setup(&store_).ok());
  StepDriver driver(&mgr_, &log_);
  auto params = [](int info) {
    return std::map<std::string, Value>{{"customer", Value::Str("a")},
                                        {"address", Value::Str("addr")},
                                        {"order_info", Value::Int(info)}};
  };
  driver.Add(Program(w, "New_Order", params(101)), IsoLevel::kReadCommittedFcw);
  driver.Add(Program(w, "New_Order", params(102)), IsoLevel::kReadCommittedFcw);
  driver.RunSchedule({0, 1});  // both read MAXDATE = 5
  driver.RunRoundRobin();
  const int committed = (driver.run(0).outcome() == StepOutcome::kCommitted) +
                        (driver.run(1).outcome() == StepOutcome::kCommitted);
  EXPECT_EQ(committed, 1);
  EXPECT_EQ(store_.CommittedTuples("ORDERS").size(), 6u);
  EXPECT_EQ(store_.ReadItemCommitted("maximum_date").value().AsInt(), 6);
}

TEST_F(ScheduleTest, AuditPhantomAtRepeatableRead) {
  Workload w = MakeOrdersWorkload(false);
  ASSERT_TRUE(w.setup(&store_).ok());
  StepDriver driver(&mgr_, &log_);
  driver.Add(Program(w, "Audit", {{"customer", Value::Str("a")}}),
             IsoLevel::kRepeatableRead);
  driver.Add(Program(w, "New_Order", {{"customer", Value::Str("a")},
                                      {"address", Value::Str("addr")},
                                      {"order_info", Value::Int(200)}}),
             IsoLevel::kReadCommitted);
  // Audit counts orders of a (3), then New_Order inserts a phantom order
  // and bumps CUST.num_orders to 4, then Audit reads num_orders.
  ASSERT_EQ(driver.Step(0), StepOutcome::kRunning);  // count1 := 3
  while (!driver.run(1).Done()) driver.Step(1);
  ASSERT_EQ(driver.run(1).outcome(), StepOutcome::kCommitted);
  while (!driver.run(0).Done()) driver.Step(0);
  ASSERT_EQ(driver.run(0).outcome(), StepOutcome::kCommitted);
  EXPECT_EQ(driver.run(0).txn().locals.at("count1").AsInt(), 3);
  EXPECT_EQ(driver.run(0).txn().locals.at("count2").AsInt(), 4);
  EXPECT_FALSE(driver.run(0).txn().locals.at("retv").AsBool());
}

TEST_F(ScheduleTest, AuditProtectedAtSerializable) {
  Workload w = MakeOrdersWorkload(false);
  ASSERT_TRUE(w.setup(&store_).ok());
  StepDriver driver(&mgr_, &log_);
  driver.Add(Program(w, "Audit", {{"customer", Value::Str("a")}}),
             IsoLevel::kSerializable);
  driver.Add(Program(w, "New_Order", {{"customer", Value::Str("a")},
                                      {"address", Value::Str("addr")},
                                      {"order_info", Value::Int(200)}}),
             IsoLevel::kReadCommitted);
  ASSERT_EQ(driver.Step(0), StepOutcome::kRunning);  // count1 with pred lock
  driver.RunRoundRobin();
  ASSERT_EQ(driver.run(0).outcome(), StepOutcome::kCommitted);
  EXPECT_TRUE(driver.run(0).txn().locals.at("retv").AsBool());
}


TEST_F(ScheduleTest, BlockedUpdateRetryDoesNotDoubleApply) {
  // Regression: a try-lock UPDATE that blocks (here: on a row X-locked by a
  // concurrent Hours) must not re-apply its set expressions when retried.
  Workload w = MakePayrollWorkload();
  ASSERT_TRUE(w.setup(&store_).ok());
  StepDriver driver(&mgr_, &log_);
  driver.Add(Program(w, "Hours", {{"i", Value::Int(1)}, {"h", Value::Int(4)}}),
             IsoLevel::kReadCommitted);
  driver.Add(Program(w, "Hours", {{"i", Value::Int(1)}, {"h", Value::Int(2)}}),
             IsoLevel::kReadCommitted);
  // T0 takes the row X lock; T1 blocks and retries several times while T0
  // finishes; then T1 runs.
  ASSERT_EQ(driver.Step(0), StepOutcome::kRunning);  // T0 update num_hrs
  EXPECT_EQ(driver.Step(1), StepOutcome::kBlocked);
  EXPECT_EQ(driver.Step(1), StepOutcome::kBlocked);
  driver.RunRoundRobin();
  ASSERT_EQ(driver.run(0).outcome(), StepOutcome::kCommitted);
  ASSERT_EQ(driver.run(1).outcome(), StepOutcome::kCommitted);
  for (const Tuple& t : store_.CommittedTuples("EMP")) {
    if (t.at("id").AsInt() == 1) {
      EXPECT_EQ(t.at("num_hrs").AsInt(), 8 + 4 + 2);
      EXPECT_EQ(t.at("sal").AsInt(), 10 * (8 + 4 + 2));
    }
  }
  OracleReport dummy;  // silence unused-include warnings in some compilers
  (void)dummy;
}

}  // namespace
}  // namespace semcor
