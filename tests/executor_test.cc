#include <gtest/gtest.h>

#include "sem/rt/oracle.h"
#include "txn/executor.h"
#include "workload/workload.h"

namespace semcor {
namespace {

TEST(ExecStatsTest, Percentiles) {
  ExecStats stats;
  stats.latency_us = {10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  EXPECT_DOUBLE_EQ(stats.LatencyPercentileUs(0), 10);
  EXPECT_DOUBLE_EQ(stats.LatencyPercentileUs(100), 100);
  EXPECT_NEAR(stats.LatencyPercentileUs(50), 55, 1e-9);
  EXPECT_EQ(ExecStats().LatencyPercentileUs(50), 0);
}

TEST(ExecStatsTest, Merge) {
  ExecStats a, b;
  a.committed = 3;
  a.aborted = 1;
  a.latency_us = {1};
  b.committed = 2;
  b.deadlocks = 4;
  b.latency_us = {2, 3};
  a.Merge(b);
  EXPECT_EQ(a.committed, 5);
  EXPECT_EQ(a.aborted, 1);
  EXPECT_EQ(a.deadlocks, 4);
  EXPECT_EQ(a.latency_us.size(), 3u);
}

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : mgr_(&store_, &locks_) {}

  Store store_;
  LockManager locks_;
  TxnManager mgr_;
};

TEST_F(ExecutorTest, BankingMixedLevelsStaysCorrect) {
  Workload w = MakeBankingWorkload(8);
  ASSERT_TRUE(w.setup(&store_).ok());
  MapEvalContext initial = store_.SnapshotToMap();
  CommitLog log;
  ConcurrentExecutor executor(&mgr_, 4);
  double wall = 0;
  ExecStats stats = executor.Run(
      [&](Rng& rng) {
        return w.DrawFromMix(rng, w.paper_levels, IsoLevel::kSerializable);
      },
      40, 20, &log, &wall);
  EXPECT_GT(stats.committed, 0);
  EXPECT_EQ(stats.committed, static_cast<long>(log.size()));
  EXPECT_EQ(stats.retries_exhausted, 0);
  OracleReport report =
      CheckSemanticCorrectness(initial, store_, log, w.app.invariant);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(ExecutorTest, HighContentionSerializableStaysCorrect) {
  // Every transaction hammers one account at SERIALIZABLE: whatever mix of
  // blocking, deadlock-victim aborts, and retries occurs, the outcome must
  // be semantically correct. (The write-skew counterpart is demonstrated
  // deterministically in schedule_test and statistically in bench E4.)
  Workload w = MakeBankingWorkload(1);
  ASSERT_TRUE(w.setup(&store_).ok());
  MapEvalContext initial = store_.SnapshotToMap();
  CommitLog log;
  ConcurrentExecutor executor(&mgr_, 4);
  double wall = 0;
  ExecStats stats = executor.Run(
      [&](Rng& rng) {
        WorkItem item;
        item.program = w.instantiate(
            rng.Bernoulli(0.5) ? "Withdraw_sav" : "Deposit_ch", rng);
        item.level = IsoLevel::kSerializable;
        return item;
      },
      25, 50, &log, &wall);
  EXPECT_GT(stats.committed, 0);
  EXPECT_EQ(stats.retries_exhausted, 0);
  OracleReport report =
      CheckSemanticCorrectness(initial, store_, log, w.app.invariant);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(ExecutorTest, DeadlockStatsAgreeAcrossLayers) {
  // Deadlock-heavy run: a tiny banking world at SERIALIZABLE with blocking
  // locks forces lock-order cycles. The lock manager counts deadlocks where
  // it detects them (wait-for cycle / wait timeout) and the executor counts
  // attempts that failed with Code::kDeadlock — the two tallies must agree.
  Workload w = MakeBankingWorkload(2);
  ASSERT_TRUE(w.setup(&store_).ok());
  CommitLog log;
  ConcurrentExecutor executor(&mgr_, 4);
  double wall = 0;
  RetryPolicy retry;
  retry.max_attempts = 8;
  retry.backoff_base_us = 0;  // no backoff: maximize lock-cycle pressure
  ExecStats stats = executor.Run(
      [&](Rng& rng) {
        WorkItem item;
        item.program = w.instantiate(
            rng.Bernoulli(0.5) ? "Withdraw_sav" : "Deposit_ch", rng);
        item.level = IsoLevel::kSerializable;
        return item;
      },
      50, retry, &log, &wall);
  EXPECT_GT(stats.committed, 0);
  EXPECT_EQ(locks_.stats().deadlocks, stats.deadlocks);
}

TEST_F(ExecutorTest, TpccMixAtPaperLevelsCorrect) {
  Workload w = MakeTpccWorkload();
  ASSERT_TRUE(w.setup(&store_).ok());
  MapEvalContext initial = store_.SnapshotToMap();
  CommitLog log;
  ConcurrentExecutor executor(&mgr_, 3);
  double wall = 0;
  ExecStats stats = executor.Run(
      [&](Rng& rng) {
        return w.DrawFromMix(rng, w.paper_levels, IsoLevel::kSerializable);
      },
      30, 20, &log, &wall);
  EXPECT_GT(stats.committed, 0);
  EXPECT_EQ(stats.retries_exhausted, 0);
  OracleReport report =
      CheckSemanticCorrectness(initial, store_, log, w.app.invariant);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

}  // namespace
}  // namespace semcor
