// Tests for the incremental pair-obligation advisor (ISSUE 8): cache
// correctness (incremental re-check == cold sweep, bit for bit), O(K)
// invalidation on a one-type edit, deterministic parallel checking, and
// agreement with the monolithic LevelAdvisor on the paper workloads.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/str_util.h"
#include "sem/check/advisor.h"
#include "sem/check/incremental.h"
#include "sem/check/suitegen.h"
#include "workload/workload.h"

namespace semcor {
namespace {

/// Serializes every field of an advice (including each obligation of each
/// report) so "equal dumps" means bit-for-bit equal analysis results, not
/// just equal recommendations.
std::string DumpReport(const LevelCheckReport& r) {
  std::string out = StrCat(r.txn_type, "@", IsoLevelName(r.level), " correct=",
                           r.correct ? 1 : 0, " triples=", r.triples_checked);
  for (const Obligation& o : r.obligations) {
    out += StrCat("\n  [", o.assertion, "] vs [", o.source, "] ",
                  InterferenceName(o.result.verdict), " excused=",
                  o.excused ? 1 : 0, " excuse=", o.excuse, " detail=",
                  o.result.detail);
  }
  return out + "\n";
}

std::string DumpAdvice(const LevelAdvice& a) {
  std::string out = StrCat(a.txn_type, " -> ", IsoLevelName(a.recommended),
                           " snapshot=", a.snapshot_correct ? 1 : 0, "\n");
  for (const LevelCheckReport& r : a.reports) out += DumpReport(r);
  out += DumpReport(a.snapshot_report);
  return out;
}

std::string DumpAll(const std::vector<LevelAdvice>& all) {
  std::string out;
  for (const LevelAdvice& a : all) out += DumpAdvice(a) + "\n";
  return out;
}

TEST(IncrementalTest, MatchesLevelAdvisorOnPaperWorkloads) {
  std::vector<Workload> workloads;
  workloads.push_back(MakeBankingWorkload(2));
  workloads.push_back(MakePayrollWorkload());
  for (const Workload& w : workloads) {
    LevelAdvisor mono(w.app, AdvisorOptions{});
    IncrementalAdvisor inc(w.app, IncrementalOptions{});
    std::vector<LevelAdvice> expect = mono.AdviseAll();
    std::vector<LevelAdvice> got = inc.AdviseAll();
    ASSERT_EQ(expect.size(), got.size());
    for (size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(expect[i].txn_type, got[i].txn_type);
      EXPECT_EQ(expect[i].recommended, got[i].recommended)
          << w.app.name << "/" << expect[i].txn_type;
      EXPECT_EQ(expect[i].snapshot_correct, got[i].snapshot_correct)
          << w.app.name << "/" << expect[i].txn_type;
      // Verdict-level agreement at every evaluated rung; the pair-merged
      // reports may list obligations in a different (per-pair) order, so
      // the bit-for-bit comparisons below are incremental-vs-incremental.
      for (const LevelCheckReport& r : expect[i].reports) {
        EXPECT_EQ(r.correct, got[i].CorrectAt(r.level))
            << w.app.name << "/" << expect[i].txn_type << "@"
            << IsoLevelName(r.level);
      }
    }
  }
}

TEST(IncrementalTest, EditedRecheckEqualsColdSweepBitForBit) {
  for (uint64_t seed : {1ULL, 7ULL, 23ULL}) {
    SuiteOptions suite;
    suite.num_types = 8;
    suite.seed = seed;
    const int edited = 3;

    // Warm advisor: cold sweep, then one-type edit, then re-sweep.
    IncrementalAdvisor warm(MakeGeneratedSuite(suite), IncrementalOptions{});
    warm.AdviseAll();
    warm.RegisterType(MakeEditedType(suite, edited));
    const std::string incremental = DumpAll(warm.AdviseAll());

    // Cold advisor over the already-edited application.
    Application after = MakeGeneratedSuite(suite);
    after.types[edited] = MakeEditedType(suite, edited);
    IncrementalAdvisor cold(after, IncrementalOptions{});
    const std::string scratch = DumpAll(cold.AdviseAll());

    EXPECT_EQ(incremental, scratch) << "seed=" << seed;
    EXPECT_GT(warm.stats().pair_hits, 0) << "seed=" << seed;
  }
}

TEST(IncrementalTest, OneTypeEditInvalidatesLinearlyManyPairs) {
  const int k = 10;
  SuiteOptions suite;
  suite.num_types = k;
  suite.seed = 5;
  IncrementalAdvisor advisor(MakeGeneratedSuite(suite), IncrementalOptions{});
  advisor.AdviseAll();
  const IncrementalStats cold = advisor.stats();
  EXPECT_EQ(cold.invalidated, 0);
  EXPECT_GT(cold.pair_checks, 0);

  advisor.RegisterType(MakeEditedType(suite, k / 2));
  const IncrementalStats after_edit = advisor.stats();
  // Pairs mentioning the edited type, at <= kIsoLevelCount levels each,
  // as target (K others) or as other (K-1 targets): strictly O(K), and in
  // particular far below the O(K^2) cold total.
  const int64_t linear_bound = int64_t{kIsoLevelCount} * (2 * k - 1);
  EXPECT_GT(after_edit.invalidated, 0);
  EXPECT_LE(after_edit.invalidated, linear_bound);

  advisor.AdviseAll();
  const IncrementalStats recheck = advisor.stats();
  const int64_t fresh = recheck.pair_checks - cold.pair_checks;
  EXPECT_GT(fresh, 0);
  EXPECT_LE(fresh, linear_bound);
  EXPECT_LT(fresh, cold.pair_checks / 2);  // O(K) vs O(K^2)
  EXPECT_GT(recheck.pair_hits, 0);
}

TEST(IncrementalTest, IdenticalReRegistrationInvalidatesNothing) {
  SuiteOptions suite;
  suite.num_types = 6;
  suite.seed = 11;
  Application app = MakeGeneratedSuite(suite);
  IncrementalAdvisor advisor(app, IncrementalOptions{});
  advisor.AdviseAll();
  const IncrementalStats cold = advisor.stats();

  // Same definition, same fingerprint: every cached pair stays valid.
  advisor.RegisterType(app.types[2]);
  advisor.AdviseAll();
  const IncrementalStats again = advisor.stats();
  EXPECT_EQ(again.invalidated, 0);
  EXPECT_EQ(again.pair_checks, cold.pair_checks);
}

TEST(IncrementalTest, ParallelSweepIsDeterministic) {
  SuiteOptions suite;
  suite.num_types = 7;
  suite.seed = 3;
  IncrementalOptions serial;
  serial.threads = 1;
  IncrementalOptions parallel;
  parallel.threads = 4;
  IncrementalAdvisor a(MakeGeneratedSuite(suite), serial);
  IncrementalAdvisor b(MakeGeneratedSuite(suite), parallel);
  EXPECT_EQ(DumpAll(a.AdviseAll()), DumpAll(b.AdviseAll()));
  // And a parallel single-type advise (pair-level fan-out) agrees too.
  IncrementalAdvisor c(MakeGeneratedSuite(suite), parallel);
  const std::string name = GeneratedTypeName(suite, 0);
  EXPECT_EQ(DumpAdvice(a.Advise(name)), DumpAdvice(c.Advise(name)));
}

TEST(IncrementalTest, RemoveTypeDropsItsAdviceAndPairs) {
  SuiteOptions suite;
  suite.num_types = 5;
  suite.seed = 9;
  IncrementalAdvisor advisor(MakeGeneratedSuite(suite), IncrementalOptions{});
  advisor.AdviseAll();
  const std::string victim = GeneratedTypeName(suite, 2);
  ASSERT_TRUE(advisor.RemoveType(victim));
  EXPECT_FALSE(advisor.RemoveType(victim));
  EXPECT_GT(advisor.stats().invalidated, 0);
  std::vector<LevelAdvice> all = advisor.AdviseAll();
  EXPECT_EQ(all.size(), 4u);
  for (const LevelAdvice& a : all) EXPECT_NE(a.txn_type, victim);

  // The shrunken application must agree with a from-scratch advisor.
  Application app = MakeGeneratedSuite(suite);
  app.types.erase(app.types.begin() + 2);
  IncrementalAdvisor cold(app, IncrementalOptions{});
  EXPECT_EQ(DumpAll(all), DumpAll(cold.AdviseAll()));
}

TEST(IncrementalTest, SharedMemoDedupesDecisions) {
  SuiteOptions suite;
  suite.num_types = 6;
  suite.seed = 2;
  IncrementalAdvisor advisor(MakeGeneratedSuite(suite), IncrementalOptions{});
  advisor.AdviseAll();
  const MemoStats memo = advisor.memo()->Stats();
  // The same formulas recur across levels and pairs; the shared memo must
  // observe traffic and produce at least some cross-check hits.
  EXPECT_GT(memo.misses, 0);
  EXPECT_GT(memo.hits, 0);
}

}  // namespace
}  // namespace semcor
