#include <gtest/gtest.h>

#include "sem/prog/builder.h"
#include "txn/interpreter.h"

namespace semcor {
namespace {

class InterpreterTest : public ::testing::Test {
 protected:
  InterpreterTest() : mgr_(&store_, &locks_) {}

  void SetUp() override {
    ASSERT_TRUE(store_.CreateItem("x", Value::Int(10)).ok());
    ASSERT_TRUE(store_
                    .CreateTable("T", Schema({{"k", Value::Type::kInt},
                                              {"v", Value::Type::kInt}}))
                    .ok());
    ASSERT_TRUE(
        store_.LoadRow("T", {{"k", Value::Int(1)}, {"v", Value::Int(5)}}).ok());
  }

  Store store_;
  LockManager locks_;
  TxnManager mgr_;
  CommitLog log_;
};

TEST_F(InterpreterTest, StepThroughAndCommit) {
  ProgramBuilder b("T");
  b.Pre(Gt(DbVar("x"), Lit(int64_t{0}))).Read("X", "x");
  b.Pre(Gt(Local("X"), Lit(int64_t{0})))
      .Write("x", Add(Local("X"), Lit(int64_t{1})));
  b.Result(Gt(DbVar("x"), Lit(int64_t{1})));
  ProgramRun run(&mgr_, std::make_shared<TxnProgram>(b.Build({})),
                 IsoLevel::kReadCommitted, &log_);
  // Active assertion tracks the control point.
  EXPECT_EQ(ToString(run.ActiveAssertion()), "(x > 0)");
  ASSERT_EQ(run.Step(false), StepOutcome::kRunning);  // read
  EXPECT_EQ(ToString(run.ActiveAssertion()), "($X > 0)");
  ASSERT_EQ(run.Step(false), StepOutcome::kRunning);  // write
  EXPECT_EQ(run.CurrentStmt(), nullptr);              // only commit remains
  EXPECT_EQ(ToString(run.ActiveAssertion()), "(x > 1)");
  ASSERT_EQ(run.Step(false), StepOutcome::kCommitted);
  EXPECT_TRUE(run.Done());
  EXPECT_EQ(log_.size(), 1u);
  EXPECT_EQ(store_.ReadItemCommitted("x").value().AsInt(), 11);
}

TEST_F(InterpreterTest, ExplicitAbortRollsBack) {
  ProgramBuilder b("T");
  b.Write("x", Lit(int64_t{0}));
  b.Abort();
  ProgramRun run(&mgr_, std::make_shared<TxnProgram>(b.Build({})),
                 IsoLevel::kReadCommitted, &log_);
  EXPECT_EQ(run.RunToCompletion(), StepOutcome::kAborted);
  EXPECT_EQ(run.failure().code(), Code::kAborted);
  EXPECT_EQ(store_.ReadItemCommitted("x").value().AsInt(), 10);
  EXPECT_EQ(log_.size(), 0u);
  EXPECT_EQ(locks_.HeldCount(run.txn().id), 0u);
}

TEST_F(InterpreterTest, MissingItemAbortsCleanly) {
  ProgramBuilder b("T");
  b.Read("X", "does_not_exist");
  ProgramRun run(&mgr_, std::make_shared<TxnProgram>(b.Build({})),
                 IsoLevel::kReadCommitted, &log_);
  EXPECT_EQ(run.RunToCompletion(), StepOutcome::kAborted);
  EXPECT_EQ(run.failure().code(), Code::kNotFound);
}

TEST_F(InterpreterTest, MissingLogicalBindingItemFailsConstruction) {
  ProgramBuilder b("T");
  b.Logical("X0", "ghost_item");
  b.Read("X", "x");
  ProgramRun run(&mgr_, std::make_shared<TxnProgram>(b.Build({})),
                 IsoLevel::kReadCommitted, &log_);
  EXPECT_EQ(run.RunToCompletion(), StepOutcome::kAborted);
}

TEST_F(InterpreterTest, GuardOverDatabaseIsRejected) {
  ProgramBuilder b("T");
  // The model restricts guards to workspace variables.
  b.If(Gt(DbVar("x"), Lit(int64_t{0})),
       [](ProgramBuilder& t) { t.Write("x", Lit(int64_t{1})); });
  ProgramRun run(&mgr_, std::make_shared<TxnProgram>(b.Build({})),
                 IsoLevel::kReadCommitted, &log_);
  EXPECT_EQ(run.RunToCompletion(), StepOutcome::kAborted);
  EXPECT_EQ(run.failure().code(), Code::kInvalidArgument);
}

TEST_F(InterpreterTest, WhileLoopExecutes) {
  ProgramBuilder b("T");
  b.Let("i", Lit(int64_t{0}));
  b.While(Lt(Local("i"), Lit(int64_t{3})), [](ProgramBuilder& body) {
    body.Read("X", "x");
    body.Write("x", Add(Local("X"), Lit(int64_t{1})));
    body.Let("i", Add(Local("i"), Lit(int64_t{1})));
  });
  ProgramRun run(&mgr_, std::make_shared<TxnProgram>(b.Build({})),
                 IsoLevel::kSerializable, &log_);
  EXPECT_EQ(run.RunToCompletion(), StepOutcome::kCommitted);
  EXPECT_EQ(store_.ReadItemCommitted("x").value().AsInt(), 13);
}

TEST_F(InterpreterTest, PredicatesCloseOverLocalsAndParams) {
  ProgramBuilder b("T");
  b.SelectRows("buf", "T", Eq(Attr("k"), Local("key")));
  TxnProgram p = b.Build({{"key", Value::Int(1)}});
  ProgramRun run(&mgr_, std::make_shared<TxnProgram>(p),
                 IsoLevel::kReadCommitted, &log_);
  EXPECT_EQ(run.RunToCompletion(), StepOutcome::kCommitted);
  EXPECT_EQ(run.txn().buffers.at("buf").size(), 1u);
  EXPECT_EQ(run.txn().locals.at("buf_count").AsInt(), 1);
}

TEST_F(InterpreterTest, SelectAggThroughManagerTakesLevelIntoAccount) {
  // An RU aggregate sees another txn's dirty insert; an RC one blocks.
  auto writer = mgr_.Begin(IsoLevel::kReadCommitted);
  ASSERT_TRUE(mgr_.InsertRow(writer.get(), "T",
                             {{"k", Value::Int(2)}, {"v", Value::Int(9)}},
                             false)
                  .ok());
  ProgramBuilder b("Agg");
  b.SelectAgg("n", Count("T", True()));
  ProgramRun dirty(&mgr_, std::make_shared<TxnProgram>(b.Build({})),
                   IsoLevel::kReadUncommitted, &log_);
  EXPECT_EQ(dirty.RunToCompletion(), StepOutcome::kCommitted);
  EXPECT_EQ(dirty.txn().locals.at("n").AsInt(), 2);  // dirty row counted

  ProgramBuilder b2("Agg");
  b2.SelectAgg("n", Count("T", True()));
  ProgramRun blocked(&mgr_, std::make_shared<TxnProgram>(b2.Build({})),
                     IsoLevel::kReadCommitted, &log_);
  EXPECT_EQ(blocked.Step(false), StepOutcome::kBlocked);
  ASSERT_TRUE(mgr_.Commit(writer.get()).ok());
  EXPECT_EQ(blocked.RunToCompletion(), StepOutcome::kCommitted);
  EXPECT_EQ(blocked.txn().locals.at("n").AsInt(), 2);
}

TEST_F(InterpreterTest, ForceAbortIsTerminal) {
  ProgramBuilder b("T");
  b.Read("X", "x");
  b.Write("x", Local("X"));
  ProgramRun run(&mgr_, std::make_shared<TxnProgram>(b.Build({})),
                 IsoLevel::kReadCommitted, &log_);
  ASSERT_EQ(run.Step(false), StepOutcome::kRunning);
  run.ForceAbort(Status::Deadlock("victim"));
  EXPECT_TRUE(run.Done());
  EXPECT_EQ(run.outcome(), StepOutcome::kAborted);
  EXPECT_EQ(run.failure().code(), Code::kDeadlock);
  // Further steps are no-ops.
  EXPECT_EQ(run.Step(false), StepOutcome::kAborted);
}

TEST_F(InterpreterTest, SnapshotRunCapturesLogicalsFromSnapshot) {
  ProgramBuilder b("T");
  b.Logical("X0", "x");
  b.Read("X", "x");
  b.Write("x", Add(Local("X"), Lit(int64_t{5})));
  b.Result(Eq(DbVar("x"), Add(Logical("X0"), Lit(int64_t{5}))));
  ProgramRun run(&mgr_, std::make_shared<TxnProgram>(b.Build({})),
                 IsoLevel::kSnapshot, &log_);
  EXPECT_EQ(run.RunToCompletion(), StepOutcome::kCommitted);
  EXPECT_EQ(run.txn().logicals.at("X0").AsInt(), 10);
  EXPECT_EQ(store_.ReadItemCommitted("x").value().AsInt(), 15);
}

}  // namespace
}  // namespace semcor
