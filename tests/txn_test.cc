#include <gtest/gtest.h>

#include "txn/txn.h"

namespace semcor {
namespace {

class TxnManagerTest : public ::testing::Test {
 protected:
  TxnManagerTest() : mgr_(&store_, &locks_) {}

  void SetUp() override {
    ASSERT_TRUE(store_.CreateItem("x", Value::Int(10)).ok());
    ASSERT_TRUE(store_.CreateItem("y", Value::Int(20)).ok());
    ASSERT_TRUE(store_
                    .CreateTable("T", Schema({{"k", Value::Type::kInt},
                                              {"v", Value::Type::kInt}}))
                    .ok());
    ASSERT_TRUE(
        store_.LoadRow("T", {{"k", Value::Int(1)}, {"v", Value::Int(5)}}).ok());
    ASSERT_TRUE(
        store_.LoadRow("T", {{"k", Value::Int(2)}, {"v", Value::Int(6)}}).ok());
  }

  Store store_;
  LockManager locks_;
  TxnManager mgr_;
};

TEST_F(TxnManagerTest, ReadCommittedBlocksOnDirtyData) {
  auto writer = mgr_.Begin(IsoLevel::kReadCommitted);
  ASSERT_TRUE(mgr_.WriteItem(writer.get(), "x", Value::Int(99), false).ok());
  auto reader = mgr_.Begin(IsoLevel::kReadCommitted);
  Value v;
  EXPECT_EQ(mgr_.ReadItem(reader.get(), "x", &v, false).code(),
            Code::kWouldBlock);
  ASSERT_TRUE(mgr_.Commit(writer.get()).ok());
  ASSERT_TRUE(mgr_.ReadItem(reader.get(), "x", &v, false).ok());
  EXPECT_EQ(v.AsInt(), 99);
}

TEST_F(TxnManagerTest, ReadUncommittedSeesDirtyData) {
  auto writer = mgr_.Begin(IsoLevel::kReadCommitted);
  ASSERT_TRUE(mgr_.WriteItem(writer.get(), "x", Value::Int(99), false).ok());
  auto reader = mgr_.Begin(IsoLevel::kReadUncommitted);
  Value v;
  ASSERT_TRUE(mgr_.ReadItem(reader.get(), "x", &v, false).ok());
  EXPECT_EQ(v.AsInt(), 99);  // dirty read
  mgr_.Abort(writer.get());
  ASSERT_TRUE(mgr_.ReadItem(reader.get(), "x", &v, false).ok());
  EXPECT_EQ(v.AsInt(), 10);  // the dirty value vanished
}

TEST_F(TxnManagerTest, ShortReadLocksAllowNonRepeatableReads) {
  auto reader = mgr_.Begin(IsoLevel::kReadCommitted);
  Value v;
  ASSERT_TRUE(mgr_.ReadItem(reader.get(), "x", &v, false).ok());
  EXPECT_EQ(v.AsInt(), 10);
  auto writer = mgr_.Begin(IsoLevel::kReadCommitted);
  ASSERT_TRUE(mgr_.WriteItem(writer.get(), "x", Value::Int(11), false).ok());
  ASSERT_TRUE(mgr_.Commit(writer.get()).ok());
  ASSERT_TRUE(mgr_.ReadItem(reader.get(), "x", &v, false).ok());
  EXPECT_EQ(v.AsInt(), 11);  // non-repeatable read at RC
}

TEST_F(TxnManagerTest, LongReadLocksBlockWriters) {
  auto reader = mgr_.Begin(IsoLevel::kRepeatableRead);
  Value v;
  ASSERT_TRUE(mgr_.ReadItem(reader.get(), "x", &v, false).ok());
  auto writer = mgr_.Begin(IsoLevel::kReadCommitted);
  EXPECT_EQ(mgr_.WriteItem(writer.get(), "x", Value::Int(11), false).code(),
            Code::kWouldBlock);
  ASSERT_TRUE(mgr_.Commit(reader.get()).ok());
  EXPECT_TRUE(mgr_.WriteItem(writer.get(), "x", Value::Int(11), false).ok());
}

TEST_F(TxnManagerTest, WriterKeepsXLockAcrossOwnRead) {
  auto writer = mgr_.Begin(IsoLevel::kReadCommitted);
  ASSERT_TRUE(mgr_.WriteItem(writer.get(), "x", Value::Int(50), false).ok());
  Value v;
  // Own short read must not drop the long X lock.
  ASSERT_TRUE(mgr_.ReadItem(writer.get(), "x", &v, false).ok());
  EXPECT_EQ(v.AsInt(), 50);
  auto other = mgr_.Begin(IsoLevel::kReadCommitted);
  EXPECT_EQ(mgr_.WriteItem(other.get(), "x", Value::Int(1), false).code(),
            Code::kWouldBlock);
}

TEST_F(TxnManagerTest, FirstCommitterWinsOnItemWrite) {
  auto t1 = mgr_.Begin(IsoLevel::kReadCommittedFcw);
  Value v;
  ASSERT_TRUE(mgr_.ReadItem(t1.get(), "x", &v, false).ok());
  // Another txn commits a write between t1's read and write.
  auto t2 = mgr_.Begin(IsoLevel::kReadCommitted);
  ASSERT_TRUE(mgr_.WriteItem(t2.get(), "x", Value::Int(77), false).ok());
  ASSERT_TRUE(mgr_.Commit(t2.get()).ok());
  EXPECT_EQ(mgr_.WriteItem(t1.get(), "x", Value::Int(88), false).code(),
            Code::kConflict);
}

TEST_F(TxnManagerTest, FcwPassesWhenUnchanged) {
  auto t1 = mgr_.Begin(IsoLevel::kReadCommittedFcw);
  Value v;
  ASSERT_TRUE(mgr_.ReadItem(t1.get(), "x", &v, false).ok());
  EXPECT_TRUE(mgr_.WriteItem(t1.get(), "x", Value::Int(88), false).ok());
  EXPECT_TRUE(mgr_.Commit(t1.get()).ok());
  EXPECT_EQ(store_.ReadItemCommitted("x").value().AsInt(), 88);
}

TEST_F(TxnManagerTest, SelectRowsWithPredicate) {
  auto t = mgr_.Begin(IsoLevel::kReadCommitted);
  std::vector<Tuple> rows;
  ASSERT_TRUE(mgr_.SelectRows(t.get(), "T", Gt(Attr("v"), Lit(int64_t{5})),
                              &rows, false)
                  .ok());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at("k").AsInt(), 2);
}

TEST_F(TxnManagerTest, UpdateRowsAppliesSets) {
  auto t = mgr_.Begin(IsoLevel::kReadCommitted);
  int updated = 0;
  ASSERT_TRUE(mgr_.UpdateRows(t.get(), "T", Eq(Attr("k"), Lit(int64_t{1})),
                              {{"v", Add(Attr("v"), Lit(int64_t{10}))}}, false,
                              &updated)
                  .ok());
  EXPECT_EQ(updated, 1);
  ASSERT_TRUE(mgr_.Commit(t.get()).ok());
  std::vector<Tuple> tuples = store_.CommittedTuples("T");
  for (const Tuple& tuple : tuples) {
    if (tuple.at("k").AsInt() == 1) {
      EXPECT_EQ(tuple.at("v").AsInt(), 15);
    }
  }
}

TEST_F(TxnManagerTest, DeleteRows) {
  auto t = mgr_.Begin(IsoLevel::kReadCommitted);
  int deleted = 0;
  ASSERT_TRUE(
      mgr_.DeleteRows(t.get(), "T", True(), false, &deleted).ok());
  EXPECT_EQ(deleted, 2);
  ASSERT_TRUE(mgr_.Commit(t.get()).ok());
  EXPECT_TRUE(store_.CommittedTuples("T").empty());
}

TEST_F(TxnManagerTest, InsertVisibleAfterCommitOnly) {
  auto t = mgr_.Begin(IsoLevel::kReadCommitted);
  ASSERT_TRUE(mgr_.InsertRow(t.get(), "T",
                             {{"k", Value::Int(3)}, {"v", Value::Int(7)}},
                             false)
                  .ok());
  EXPECT_EQ(store_.CommittedTuples("T").size(), 2u);
  ASSERT_TRUE(mgr_.Commit(t.get()).ok());
  EXPECT_EQ(store_.CommittedTuples("T").size(), 3u);
}

TEST_F(TxnManagerTest, SerializablePredicateLockBlocksPhantomInsert) {
  auto reader = mgr_.Begin(IsoLevel::kSerializable);
  std::vector<Tuple> rows;
  ASSERT_TRUE(mgr_.SelectRows(reader.get(), "T",
                              Eq(Attr("k"), Lit(int64_t{3})), &rows, false)
                  .ok());
  EXPECT_TRUE(rows.empty());
  auto writer = mgr_.Begin(IsoLevel::kReadCommitted);
  // Inserting a matching (phantom) tuple is blocked by the S predicate lock.
  EXPECT_EQ(mgr_.InsertRow(writer.get(), "T",
                           {{"k", Value::Int(3)}, {"v", Value::Int(1)}}, false)
                .code(),
            Code::kWouldBlock);
  // A non-matching insert passes.
  EXPECT_TRUE(mgr_.InsertRow(writer.get(), "T",
                             {{"k", Value::Int(9)}, {"v", Value::Int(1)}},
                             false)
                  .ok());
}

TEST_F(TxnManagerTest, RepeatableReadAdmitsPhantoms) {
  auto reader = mgr_.Begin(IsoLevel::kRepeatableRead);
  std::vector<Tuple> rows;
  ASSERT_TRUE(mgr_.SelectRows(reader.get(), "T",
                              Eq(Attr("k"), Lit(int64_t{3})), &rows, false)
                  .ok());
  EXPECT_TRUE(rows.empty());
  auto writer = mgr_.Begin(IsoLevel::kReadCommitted);
  ASSERT_TRUE(mgr_.InsertRow(writer.get(), "T",
                             {{"k", Value::Int(3)}, {"v", Value::Int(1)}},
                             false)
                  .ok());
  ASSERT_TRUE(mgr_.Commit(writer.get()).ok());
  ASSERT_TRUE(mgr_.SelectRows(reader.get(), "T",
                              Eq(Attr("k"), Lit(int64_t{3})), &rows, false)
                  .ok());
  EXPECT_EQ(rows.size(), 1u);  // the phantom appeared
}

TEST_F(TxnManagerTest, SnapshotLevelReadsSnapshotAndDefersWrites) {
  auto snap = mgr_.Begin(IsoLevel::kSnapshot);
  Value v;
  ASSERT_TRUE(mgr_.ReadItem(snap.get(), "x", &v, false).ok());
  EXPECT_EQ(v.AsInt(), 10);
  ASSERT_TRUE(mgr_.WriteItem(snap.get(), "x", Value::Int(44), false).ok());
  // Deferred: not even dirty-visible.
  EXPECT_EQ(store_.ReadItemLatest("x").value().AsInt(), 10);
  // Own read sees the buffered write.
  ASSERT_TRUE(mgr_.ReadItem(snap.get(), "x", &v, false).ok());
  EXPECT_EQ(v.AsInt(), 44);
  ASSERT_TRUE(mgr_.Commit(snap.get()).ok());
  EXPECT_EQ(store_.ReadItemCommitted("x").value().AsInt(), 44);
}

TEST_F(TxnManagerTest, SnapshotCommitConflictAborts) {
  auto snap = mgr_.Begin(IsoLevel::kSnapshot);
  ASSERT_TRUE(mgr_.WriteItem(snap.get(), "x", Value::Int(44), false).ok());
  auto other = mgr_.Begin(IsoLevel::kReadCommitted);
  ASSERT_TRUE(mgr_.WriteItem(other.get(), "x", Value::Int(55), false).ok());
  ASSERT_TRUE(mgr_.Commit(other.get()).ok());
  Status s = mgr_.Commit(snap.get());
  EXPECT_EQ(s.code(), Code::kConflict);
  EXPECT_EQ(snap->state, Txn::State::kAborted);
  EXPECT_EQ(store_.ReadItemCommitted("x").value().AsInt(), 55);
}

TEST_F(TxnManagerTest, AbortReleasesEverything) {
  auto t = mgr_.Begin(IsoLevel::kRepeatableRead);
  Value v;
  ASSERT_TRUE(mgr_.ReadItem(t.get(), "x", &v, false).ok());
  ASSERT_TRUE(mgr_.WriteItem(t.get(), "y", Value::Int(0), false).ok());
  mgr_.Abort(t.get());
  EXPECT_EQ(locks_.HeldCount(t->id), 0u);
  EXPECT_EQ(store_.ReadItemCommitted("y").value().AsInt(), 20);
}

}  // namespace
}  // namespace semcor
