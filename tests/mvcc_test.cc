#include <gtest/gtest.h>

#include "mvcc/version_store.h"

namespace semcor {
namespace {

class SnapshotViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(store_.CreateItem("x", Value::Int(10)).ok());
    ASSERT_TRUE(store_
                    .CreateTable("T", Schema({{"k", Value::Type::kInt},
                                              {"v", Value::Type::kInt}}))
                    .ok());
    Result<RowId> row =
        store_.LoadRow("T", {{"k", Value::Int(1)}, {"v", Value::Int(100)}});
    ASSERT_TRUE(row.ok());
    row_ = row.value();
  }

  Store store_;
  RowId row_ = 0;
};

TEST_F(SnapshotViewTest, ReadsFromSnapshotNotLatest) {
  SnapshotView view(&store_, store_.CurrentTs());
  // A later committed write is invisible.
  ASSERT_TRUE(store_.WriteItemUncommitted(1, "x", Value::Int(99)).ok());
  store_.CommitTxn(1);
  EXPECT_EQ(view.ReadItem("x").value().AsInt(), 10);
}

TEST_F(SnapshotViewTest, OwnWritesVisible) {
  SnapshotView view(&store_, store_.CurrentTs());
  view.WriteItem("x", Value::Int(55));
  EXPECT_EQ(view.ReadItem("x").value().AsInt(), 55);
}

TEST_F(SnapshotViewTest, ScanOverlaysOwnOps) {
  SnapshotView view(&store_, store_.CurrentTs());
  view.InsertRow("T", {{"k", Value::Int(2)}, {"v", Value::Int(200)}});
  ASSERT_TRUE(
      view.UpdateRow("T", row_, {{"k", Value::Int(1)}, {"v", Value::Int(111)}})
          .ok());
  std::map<int64_t, int64_t> seen;
  ASSERT_TRUE(view.Scan("T", [&](RowId, const Tuple& t) {
                    seen[t.at("k").AsInt()] = t.at("v").AsInt();
                  })
                  .ok());
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[1], 111);
  EXPECT_EQ(seen[2], 200);
}

TEST_F(SnapshotViewTest, OwnDeleteHidesRow) {
  SnapshotView view(&store_, store_.CurrentTs());
  ASSERT_TRUE(view.DeleteRow("T", row_).ok());
  int count = 0;
  ASSERT_TRUE(view.Scan("T", [&](RowId, const Tuple&) { ++count; }).ok());
  EXPECT_EQ(count, 0);
}

TEST_F(SnapshotViewTest, UpdateOwnInsert) {
  SnapshotView view(&store_, store_.CurrentTs());
  view.InsertRow("T", {{"k", Value::Int(2)}, {"v", Value::Int(200)}});
  // Find the synthetic id through a scan.
  RowId synthetic = 0;
  ASSERT_TRUE(view.Scan("T", [&](RowId id, const Tuple& t) {
                    if (t.at("k").AsInt() == 2) synthetic = id;
                  })
                  .ok());
  ASSERT_GE(synthetic, SnapshotView::kOwnRowBase);
  ASSERT_TRUE(view.UpdateRow("T", synthetic,
                             {{"k", Value::Int(2)}, {"v", Value::Int(201)}})
                  .ok());
  int64_t v = 0;
  ASSERT_TRUE(view.Scan("T", [&](RowId, const Tuple& t) {
                    if (t.at("k").AsInt() == 2) v = t.at("v").AsInt();
                  })
                  .ok());
  EXPECT_EQ(v, 201);
}

TEST_F(SnapshotViewTest, CommitInstallsAtomically) {
  SnapshotView view(&store_, store_.CurrentTs());
  view.WriteItem("x", Value::Int(42));
  view.InsertRow("T", {{"k", Value::Int(3)}, {"v", Value::Int(300)}});
  ASSERT_TRUE(view.DeleteRow("T", row_).ok());
  Result<Timestamp> ts = view.Commit(7);
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(store_.ReadItemCommitted("x").value().AsInt(), 42);
  std::vector<Tuple> tuples = store_.CommittedTuples("T");
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_EQ(tuples[0].at("k").AsInt(), 3);
}

TEST_F(SnapshotViewTest, FirstCommitterWinsOnItem) {
  SnapshotView v1(&store_, store_.CurrentTs());
  SnapshotView v2(&store_, store_.CurrentTs());
  v1.WriteItem("x", Value::Int(1));
  v2.WriteItem("x", Value::Int(2));
  ASSERT_TRUE(v1.Commit(1).ok());
  Result<Timestamp> second = v2.Commit(2);
  EXPECT_EQ(second.status().code(), Code::kConflict);
}

TEST_F(SnapshotViewTest, FirstCommitterWinsOnRow) {
  SnapshotView v1(&store_, store_.CurrentTs());
  SnapshotView v2(&store_, store_.CurrentTs());
  ASSERT_TRUE(
      v1.UpdateRow("T", row_, {{"k", Value::Int(1)}, {"v", Value::Int(1)}})
          .ok());
  ASSERT_TRUE(
      v2.UpdateRow("T", row_, {{"k", Value::Int(1)}, {"v", Value::Int(2)}})
          .ok());
  ASSERT_TRUE(v1.Commit(1).ok());
  EXPECT_EQ(v2.Commit(2).status().code(), Code::kConflict);
}

TEST_F(SnapshotViewTest, DisjointWriteSetsBothCommit) {
  ASSERT_TRUE(store_.CreateItem("y", Value::Int(0)).ok());
  SnapshotView v1(&store_, store_.CurrentTs());
  SnapshotView v2(&store_, store_.CurrentTs());
  v1.WriteItem("x", Value::Int(1));
  v2.WriteItem("y", Value::Int(2));
  EXPECT_TRUE(v1.Commit(1).ok());
  EXPECT_TRUE(v2.Commit(2).ok());
}

TEST_F(SnapshotViewTest, WriteSkewAdmitted) {
  // The hallmark SNAPSHOT anomaly: both txns read both items, each writes a
  // different one; both commit (disjoint write sets).
  ASSERT_TRUE(store_.CreateItem("sav", Value::Int(5)).ok());
  ASSERT_TRUE(store_.CreateItem("ch", Value::Int(5)).ok());
  SnapshotView v1(&store_, store_.CurrentTs());
  SnapshotView v2(&store_, store_.CurrentTs());
  const int64_t sum1 =
      v1.ReadItem("sav").value().AsInt() + v1.ReadItem("ch").value().AsInt();
  const int64_t sum2 =
      v2.ReadItem("sav").value().AsInt() + v2.ReadItem("ch").value().AsInt();
  ASSERT_EQ(sum1, 10);
  ASSERT_EQ(sum2, 10);
  v1.WriteItem("sav", Value::Int(5 - 8));  // withdraw 8 from savings
  v2.WriteItem("ch", Value::Int(5 - 8));   // withdraw 8 from checking
  EXPECT_TRUE(v1.Commit(1).ok());
  EXPECT_TRUE(v2.Commit(2).ok());
  // The combined-balance constraint is now violated.
  EXPECT_LT(store_.ReadItemCommitted("sav").value().AsInt() +
                store_.ReadItemCommitted("ch").value().AsInt(),
            0);
}

TEST_F(SnapshotViewTest, InsertsNeverConflict) {
  SnapshotView v1(&store_, store_.CurrentTs());
  SnapshotView v2(&store_, store_.CurrentTs());
  v1.InsertRow("T", {{"k", Value::Int(7)}, {"v", Value::Int(1)}});
  v2.InsertRow("T", {{"k", Value::Int(7)}, {"v", Value::Int(2)}});
  EXPECT_TRUE(v1.Commit(1).ok());
  EXPECT_TRUE(v2.Commit(2).ok());  // phantom-style duplicate admitted
  EXPECT_EQ(store_.CommittedTuples("T").size(), 3u);
}

}  // namespace
}  // namespace semcor
