#include <gtest/gtest.h>

#include "sem/check/annotation.h"
#include "sem/check/interference.h"
#include "sem/prog/builder.h"
#include "workload/workload.h"

namespace semcor {
namespace {

TEST(AnnotationTest, ValidOutlineProves) {
  ProgramBuilder b("T");
  b.IPart(Ge(DbVar("x"), Lit(int64_t{0})));
  b.Logical("X0", "x");
  b.Pre(Ge(DbVar("x"), Lit(int64_t{0}))).Read("X", "x");
  b.Pre(And(Ge(Local("X"), Lit(int64_t{0})), Eq(Local("X"), Logical("X0"))))
      .Write("x", Add(Local("X"), Lit(int64_t{1})));
  b.Result(Eq(DbVar("x"), Add(Logical("X0"), Lit(int64_t{1}))));
  AnnotationReport report = CheckAnnotations(b.Build({}));
  EXPECT_TRUE(report.all_proved)
      << (report.issues.empty() ? "" : report.issues[0].detail);
  EXPECT_FALSE(report.any_refuted);
}

TEST(AnnotationTest, WrongPostconditionRefuted) {
  ProgramBuilder b("T");
  b.Logical("X0", "x");
  b.Pre(True()).Read("X", "x");
  b.Pre(Eq(Local("X"), Logical("X0")))
      .Write("x", Add(Local("X"), Lit(int64_t{1})));
  // Wrong: claims x unchanged.
  b.Result(Eq(DbVar("x"), Logical("X0")));
  AnnotationReport report = CheckAnnotations(b.Build({}));
  EXPECT_FALSE(report.all_proved);
  EXPECT_TRUE(report.any_refuted);
}

TEST(AnnotationTest, BranchGuardsAvailable) {
  ProgramBuilder b("T");
  b.Pre(True()).Read("X", "x");
  b.Pre(True()).If(Ge(Local("X"), Lit(int64_t{3})),
                   [](ProgramBuilder& t) {
                     // Inside the branch the guard justifies this.
                     t.Pre(Ge(Local("X"), Lit(int64_t{3})))
                         .Write("y", Local("X"));
                   });
  b.Result(True());
  AnnotationReport report = CheckAnnotations(b.Build({}));
  EXPECT_TRUE(report.all_proved);
}

TEST(AnnotationTest, LoopInvariantChecked) {
  // i := 0; while i < 3: {0 <= i <= 3} i := i + 1; post: i == 3 is not
  // derivable from the weak invariant (only i <= 3 and !(i<3) give i == 3).
  ProgramBuilder b("T");
  b.Pre(True()).Let("i", Lit(int64_t{0}));
  const Expr inv = And(Ge(Local("i"), Lit(int64_t{0})),
                       Le(Local("i"), Lit(int64_t{3})));
  b.Pre(inv).While(Lt(Local("i"), Lit(int64_t{3})), [&](ProgramBuilder& body) {
    body.Pre(And(inv, Lt(Local("i"), Lit(int64_t{3}))))
        .Let("i", Add(Local("i"), Lit(int64_t{1})));
  });
  b.Result(Eq(Local("i"), Lit(int64_t{3})));
  AnnotationReport report = CheckAnnotations(b.Build({}));
  EXPECT_TRUE(report.all_proved)
      << (report.issues.empty() ? "" : report.issues[0].detail);
}

TEST(AnnotationTest, BrokenLoopInvariantFlagged) {
  ProgramBuilder b("T");
  b.Pre(True()).Let("i", Lit(int64_t{0}));
  // Claimed invariant i == 0 is broken by the body.
  b.Pre(Eq(Local("i"), Lit(int64_t{0})))
      .While(Lt(Local("i"), Lit(int64_t{3})), [&](ProgramBuilder& body) {
        body.Pre(Eq(Local("i"), Lit(int64_t{0})))
            .Let("i", Add(Local("i"), Lit(int64_t{1})));
      });
  b.Result(True());
  AnnotationReport report = CheckAnnotations(b.Build({}));
  EXPECT_FALSE(report.all_proved);
  EXPECT_TRUE(report.any_refuted);
}

// Every paper workload's outlines must at least not be *refuted* (UNKNOWN
// entailments are expected where lock-based reasoning exceeds the prover).
class WorkloadAnnotationTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkloadAnnotationTest, OutlinesNotRefuted) {
  Workload w;
  const std::string name = GetParam();
  if (name == "banking") w = MakeBankingWorkload();
  if (name == "payroll") w = MakePayrollWorkload();
  if (name == "mailing") w = MakeMailingWorkload();
  if (name == "orders") w = MakeOrdersWorkload(false);
  if (name == "orders_unique") w = MakeOrdersWorkload(true);
  if (name == "tpcc") w = MakeTpccWorkload();
  ASSERT_FALSE(w.app.types.empty());
  for (const TransactionType& type : w.app.types) {
    for (const auto& scenario : type.analysis_scenarios) {
      TxnProgram p = PrepareForAnalysis(type.make(scenario), "");
      AnnotationReport report = CheckAnnotations(p);
      EXPECT_FALSE(report.any_refuted)
          << type.name << ": "
          << (report.issues.empty() ? "" : report.issues[0].where + ": " +
                                               report.issues[0].detail);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadAnnotationTest,
                         ::testing::Values("banking", "payroll", "mailing",
                                           "orders", "orders_unique", "tpcc"));

}  // namespace
}  // namespace semcor
