#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "explore/session.h"
#include "lock/lock_manager.h"
#include "storage/store.h"
#include "txn/txn.h"
#include "wal/device.h"
#include "wal/record.h"
#include "wal/wal.h"
#include "workload/workload.h"

namespace semcor {
namespace {

using wal::Lsn;
using wal::LsnLe;
using wal::LsnLt;
using wal::MemDevice;
using wal::RecoveryResult;
using wal::WalOptions;
using wal::WriteAheadLog;

// ---- LSN wrap-tolerant comparison ----

TEST(LsnTest, WrapTolerantComparison) {
  EXPECT_TRUE(LsnLe(1, 1));
  EXPECT_TRUE(LsnLe(1, 2));
  EXPECT_FALSE(LsnLe(2, 1));
  EXPECT_TRUE(LsnLt(1, 2));
  EXPECT_FALSE(LsnLt(1, 1));

  // Across the 2^64 wrap: near-max LSNs are older than small post-wrap ones.
  const Lsn high = ~Lsn{0} - 1;
  EXPECT_TRUE(LsnLt(high, high + 1));
  EXPECT_TRUE(LsnLt(high, high + 3));  // wraps past 0
  EXPECT_FALSE(LsnLe(high + 3, high));
  EXPECT_TRUE(LsnLe(~Lsn{0}, Lsn{5}));
  EXPECT_FALSE(LsnLe(Lsn{5}, ~Lsn{0}));
}

// ---- record codec ----

TEST(WalRecordTest, CodecRoundTrip) {
  std::string log;
  {
    wal::Record rec;
    rec.lsn = 7;
    rec.type = wal::RecordType::kBegin;
    rec.body = wal::BeginBody{3, 2};
    log += wal::EncodeRecord(rec);
  }
  {
    wal::Record rec;
    rec.lsn = 8;
    rec.type = wal::RecordType::kWrite;
    wal::WriteBody body;
    body.txn = 3;
    body.target = "x";
    body.item_prior = Value::Int(41);
    rec.body = std::move(body);
    log += wal::EncodeRecord(rec);
  }
  {
    wal::Record rec;
    rec.lsn = 9;
    rec.type = wal::RecordType::kCommit;
    wal::CommitBody body;
    body.txn = 3;
    body.commit_ts = 12;
    body.effects.items.push_back({"x", Value::Int(42)});
    body.effects.rows.push_back(
        {"t", 5, Tuple{{"a", Value::Str("hi")}, {"b", Value::Bool(true)}}});
    body.effects.rows.push_back({"t", 6, std::nullopt});  // tombstone
    rec.body = std::move(body);
    log += wal::EncodeRecord(rec);
  }

  const wal::ScanResult scan = wal::ScanRecords(log);
  EXPECT_FALSE(scan.tail_torn);
  EXPECT_EQ(scan.clean_bytes, log.size());
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.records[0].lsn, 7u);
  EXPECT_EQ(scan.records[0].type, wal::RecordType::kBegin);
  const auto& w = std::get<wal::WriteBody>(scan.records[1].body);
  EXPECT_EQ(w.target, "x");
  ASSERT_TRUE(w.item_prior.has_value());
  EXPECT_EQ(*w.item_prior, Value::Int(41));
  const auto& c = std::get<wal::CommitBody>(scan.records[2].body);
  EXPECT_EQ(c.commit_ts, 12u);
  ASSERT_EQ(c.effects.items.size(), 1u);
  EXPECT_EQ(c.effects.items[0].value, Value::Int(42));
  ASSERT_EQ(c.effects.rows.size(), 2u);
  ASSERT_TRUE(c.effects.rows[0].image.has_value());
  EXPECT_EQ(c.effects.rows[0].image->at("a"), Value::Str("hi"));
  EXPECT_FALSE(c.effects.rows[1].image.has_value());
}

TEST(WalRecordTest, TornAndCorruptTailsAreRejected) {
  std::string log;
  for (int i = 0; i < 3; ++i) {
    wal::Record rec;
    rec.lsn = static_cast<Lsn>(i + 1);
    rec.type = wal::RecordType::kBegin;
    rec.body = wal::BeginBody{static_cast<TxnId>(i + 1), 0};
    log += wal::EncodeRecord(rec);
  }
  const size_t frame = log.size() / 3;

  // Truncation mid-frame: the clean prefix survives, the tail is torn.
  {
    const std::string torn = log.substr(0, 2 * frame + frame / 2);
    const wal::ScanResult scan = wal::ScanRecords(torn);
    EXPECT_TRUE(scan.tail_torn);
    EXPECT_EQ(scan.records.size(), 2u);
    EXPECT_EQ(scan.clean_bytes, 2 * frame);
  }
  // A flipped payload byte fails the CRC and stops the scan there.
  {
    std::string corrupt = log;
    corrupt[2 * frame + 10] ^= 0x40;
    const wal::ScanResult scan = wal::ScanRecords(corrupt);
    EXPECT_TRUE(scan.tail_torn);
    EXPECT_EQ(scan.records.size(), 2u);
  }
  // A corrupt length header cannot run the scan off the end.
  {
    std::string corrupt = log;
    corrupt[0] = '\xff';
    corrupt[1] = '\xff';
    const wal::ScanResult scan = wal::ScanRecords(corrupt);
    EXPECT_TRUE(scan.tail_torn);
    EXPECT_TRUE(scan.records.empty());
  }
}

// ---- WAL + recovery over a real transaction manager ----

struct World {
  Store store;
  LockManager locks;
  TxnManager mgr{&store, &locks};

  World() {
    EXPECT_TRUE(store.CreateItem("x", Value::Int(0)).ok());
    EXPECT_TRUE(store.CreateItem("y", Value::Int(0)).ok());
  }
};

/// One single-item write transaction driven to commit; returns the durable
/// ack flag (true without a WAL or when the fsync covered the record).
bool CommitWrite(TxnManager* mgr, IsoLevel level, const std::string& item,
                 int64_t v) {
  std::unique_ptr<Txn> txn = mgr->Begin(level);
  EXPECT_TRUE(mgr->WriteItem(txn.get(), item, Value::Int(v), true).ok());
  EXPECT_TRUE(mgr->Commit(txn.get()).ok());
  return txn->durable;
}

int64_t ItemValue(const Store& store, const std::string& name) {
  Result<Value> v = store.ReadItemCommitted(name);
  EXPECT_TRUE(v.ok());
  return v.value().AsInt();
}

TEST(WalTest, RecoveryReplaysCommittedPrefixAndDiscardsLosers) {
  World world;
  auto device = std::make_unique<MemDevice>();
  MemDevice* mem = device.get();
  WalOptions opts;
  opts.fsync = wal::FsyncPolicy::kPerCommit;
  WriteAheadLog wal(std::move(device), &world.store, opts);
  world.mgr.SetWal(&wal);

  EXPECT_TRUE(CommitWrite(&world.mgr, IsoLevel::kSerializable, "x", 10));
  EXPECT_TRUE(CommitWrite(&world.mgr, IsoLevel::kSnapshot, "y", 20));
  // A loser: begun and written but never finished when the crash hits.
  std::unique_ptr<Txn> loser = world.mgr.Begin(IsoLevel::kSerializable);
  ASSERT_TRUE(world.mgr.WriteItem(loser.get(), "x", Value::Int(99), true).ok());

  World fresh;
  const RecoveryResult rec = wal::RecoverFromBytes(mem->data(), &fresh.store);
  EXPECT_FALSE(rec.tail_torn);
  EXPECT_EQ(rec.replayed_txns, 2u);
  EXPECT_EQ(rec.recovered_commits, 2u);
  EXPECT_EQ(rec.losers_aborted, 1u);
  EXPECT_EQ(rec.undone_writes, 1u);
  EXPECT_EQ(rec.max_txn_id, loser->id);
  EXPECT_EQ(ItemValue(fresh.store, "x"), 10);  // the loser's 99 never lands
  EXPECT_EQ(ItemValue(fresh.store, "y"), 20);

  world.mgr.Abort(loser.get());
  world.mgr.SetWal(nullptr);
}

TEST(WalTest, LsnAllocationSurvivesWrap) {
  World world;
  auto device = std::make_unique<MemDevice>();
  MemDevice* mem = device.get();
  WalOptions opts;
  opts.fsync = wal::FsyncPolicy::kPerCommit;
  opts.first_lsn = ~Lsn{0} - 2;  // a handful of appends crosses the wrap
  WriteAheadLog wal(std::move(device), &world.store, opts);
  world.mgr.SetWal(&wal);

  for (int i = 1; i <= 4; ++i) {
    EXPECT_TRUE(CommitWrite(&world.mgr, IsoLevel::kSerializable, "x", i));
  }
  world.mgr.SetWal(nullptr);
  wal.Stop();

  // 4 commits = 8 records (begin+write... begin is 1, write is 1, commit 1:
  // 12 records total), comfortably past the wrap. The durable LSN must have
  // wrapped numerically below first_lsn yet still compare as newest, and the
  // 0 sentinel must never have been assigned.
  const Lsn durable = wal.durable_lsn();
  EXPECT_LT(durable, opts.first_lsn);  // numeric wrap happened
  EXPECT_TRUE(LsnLt(opts.first_lsn, durable));

  World fresh;
  const RecoveryResult rec = wal::RecoverFromBytes(mem->data(), &fresh.store);
  EXPECT_EQ(rec.replayed_txns, 4u);
  EXPECT_EQ(ItemValue(fresh.store, "x"), 4);
  EXPECT_NE(rec.next_lsn, 0u);
  EXPECT_TRUE(LsnLt(opts.first_lsn, rec.next_lsn));
}

TEST(WalTest, CheckpointTruncatesWithSpaceAndCounterAccounting) {
  World world;
  auto device = std::make_unique<MemDevice>();
  MemDevice* mem = device.get();
  WalOptions opts;
  opts.fsync = wal::FsyncPolicy::kPerCommit;
  opts.checkpoint_every_bytes = 0;  // manual
  WriteAheadLog wal(std::move(device), &world.store, opts);
  world.mgr.SetWal(&wal);

  for (int i = 1; i <= 20; ++i) {
    EXPECT_TRUE(CommitWrite(&world.mgr, IsoLevel::kSerializable, "x", i));
  }
  const wal::WalStats before = wal.stats();
  EXPECT_EQ(before.commits_logged, 20u);
  EXPECT_GT(before.log_bytes, 0u);
  EXPECT_EQ(before.truncations, 0u);

  ASSERT_TRUE(wal.Checkpoint().ok());
  const wal::WalStats after = wal.stats();
  EXPECT_EQ(after.truncations, 1u);
  EXPECT_LT(after.log_bytes, before.log_bytes);
  EXPECT_GE(after.bytes_reclaimed, before.log_bytes);
  EXPECT_EQ(wal.committed_total(), 20u);

  // Counter parity across truncation: the checkpoint record carries the
  // cumulative commit count, so recovery reports 20 despite replaying none.
  World fresh;
  const RecoveryResult rec = wal::RecoverFromBytes(mem->data(), &fresh.store);
  EXPECT_TRUE(rec.found_checkpoint);
  EXPECT_EQ(rec.replayed_txns, 0u);
  EXPECT_EQ(rec.recovered_commits, 20u);
  EXPECT_EQ(ItemValue(fresh.store, "x"), 20);

  // Commits after the checkpoint replay on top of its state.
  EXPECT_TRUE(CommitWrite(&world.mgr, IsoLevel::kSerializable, "y", 7));
  World fresh2;
  const RecoveryResult rec2 = wal::RecoverFromBytes(mem->data(), &fresh2.store);
  EXPECT_EQ(rec2.replayed_txns, 1u);
  EXPECT_EQ(rec2.recovered_commits, 21u);
  EXPECT_EQ(ItemValue(fresh2.store, "x"), 20);
  EXPECT_EQ(ItemValue(fresh2.store, "y"), 7);
  world.mgr.SetWal(nullptr);
}

/// Crash-point matrix over the WAL fault sites: at every site, the acked
/// prefix must survive (durable commits are never lost) and recovery must
/// land on a commit-order prefix of the history.
TEST(WalTest, CrashAtEverySiteRecoversCommitOrderPrefix) {
  const FaultSite sites[] = {FaultSite::kWalAppend, FaultSite::kWalPreSync,
                             FaultSite::kWalPostSync};
  for (FaultSite site : sites) {
    SCOPED_TRACE(FaultSiteName(site));
    World world;
    auto device = std::make_unique<MemDevice>();
    MemDevice* mem = device.get();
    WalOptions opts;
    opts.fsync = wal::FsyncPolicy::kPerCommit;
    WriteAheadLog wal(std::move(device), &world.store, opts);
    world.mgr.SetWal(&wal);

    EXPECT_TRUE(CommitWrite(&world.mgr, IsoLevel::kSerializable, "x", 1));

    // Arm: crash at the first visit of `site` during the second commit.
    bool armed = true;
    wal.SetFaultHook([&armed, site](FaultSite s, TxnId) {
      if (s != site || !armed) return false;
      armed = false;
      return true;
    });
    std::unique_ptr<Txn> txn = world.mgr.Begin(IsoLevel::kSerializable);
    ASSERT_TRUE(world.mgr.WriteItem(txn.get(), "x", Value::Int(2), true).ok());
    ASSERT_TRUE(world.mgr.Commit(txn.get()).ok());
    EXPECT_TRUE(wal.crashed());
    // Only a crash strictly after the fsync may acknowledge the commit.
    EXPECT_EQ(txn->durable, site == FaultSite::kWalPostSync);

    // Lower bound: the synced prefix is what any crash leaves at least.
    // Every acked commit must be in it.
    {
      World fresh;
      const std::string synced = mem->data().substr(0, mem->synced_size());
      const RecoveryResult rec = wal::RecoverFromBytes(synced, &fresh.store);
      if (txn->durable) {
        EXPECT_EQ(rec.replayed_txns, 2u);
        EXPECT_EQ(ItemValue(fresh.store, "x"), 2);
      } else {
        EXPECT_EQ(rec.replayed_txns, 1u);
        EXPECT_EQ(ItemValue(fresh.store, "x"), 1);
      }
    }
    // Upper bound: everything appended. A torn append (crash at kWalAppend
    // writes half the commit frame) must be rejected by the CRC; the other
    // sites leave a complete record that redo may apply.
    {
      World fresh;
      const RecoveryResult rec =
          wal::RecoverFromBytes(mem->data(), &fresh.store);
      if (site == FaultSite::kWalAppend) {
        EXPECT_TRUE(rec.tail_torn);
        EXPECT_EQ(rec.replayed_txns, 1u);
        EXPECT_EQ(ItemValue(fresh.store, "x"), 1);
      } else {
        EXPECT_EQ(rec.replayed_txns, 2u);
        EXPECT_EQ(ItemValue(fresh.store, "x"), 2);
      }
    }
    world.mgr.SetWal(nullptr);
  }
}

TEST(WalTest, CrashMidCheckpointKeepsOldLog) {
  World world;
  auto device = std::make_unique<MemDevice>();
  MemDevice* mem = device.get();
  WalOptions opts;
  opts.fsync = wal::FsyncPolicy::kPerCommit;
  WriteAheadLog wal(std::move(device), &world.store, opts);
  world.mgr.SetWal(&wal);

  EXPECT_TRUE(CommitWrite(&world.mgr, IsoLevel::kSerializable, "x", 5));
  const std::string before = mem->data();

  wal.SetFaultHook([](FaultSite s, TxnId) {
    return s == FaultSite::kWalCheckpoint;
  });
  EXPECT_FALSE(wal.Checkpoint().ok());
  EXPECT_TRUE(wal.crashed());
  // The atomic replace never happened: the device still holds the old log,
  // and recovery replays it unchanged.
  EXPECT_EQ(mem->data(), before);
  World fresh;
  const RecoveryResult rec = wal::RecoverFromBytes(mem->data(), &fresh.store);
  EXPECT_EQ(rec.replayed_txns, 1u);
  EXPECT_EQ(ItemValue(fresh.store, "x"), 5);
  world.mgr.SetWal(nullptr);
}

TEST(WalTest, GroupCommitAcksEveryCommitAndBatchesFsyncs) {
  World world;
  auto device = std::make_unique<MemDevice>();
  WalOptions opts;
  opts.fsync = wal::FsyncPolicy::kGroupCommit;
  opts.group_commit_us = 200;
  WriteAheadLog wal(std::move(device), &world.store, opts);
  wal.Start();
  world.mgr.SetWal(&wal);

  constexpr int kThreads = 3;
  constexpr int kCommits = 5;
  std::vector<int> acked(kThreads, 0);
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      const std::string item = t % 2 == 0 ? "x" : "y";
      for (int i = 0; i < kCommits; ++i) {
        if (CommitWrite(&world.mgr, IsoLevel::kSerializable, item, i)) {
          ++acked[t];
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  world.mgr.SetWal(nullptr);
  wal.Stop();

  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(acked[t], kCommits);
  const wal::WalStats stats = wal.stats();
  EXPECT_EQ(stats.commits_logged, static_cast<uint64_t>(kThreads * kCommits));
  EXPECT_EQ(stats.batch_commits, stats.commits_logged);
  EXPECT_GE(stats.group_commit_batches, 1u);
  EXPECT_GE(stats.MeanBatchSize(), 1.0);
}

TEST(WalTest, OpenDirRecoversAcrossProcessRestart) {
  const std::string dir = ::testing::TempDir() + "wal_test_dir";
  // TempDir survives across test-binary runs: start from an empty log.
  std::remove((dir + "/wal.log").c_str());
  WalOptions opts;
  opts.fsync = wal::FsyncPolicy::kPerCommit;
  {
    World world;
    RecoveryResult rec;
    Result<std::unique_ptr<WriteAheadLog>> wal =
        WriteAheadLog::OpenDir(dir, &world.store, opts, &rec);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    EXPECT_EQ(rec.recovered_commits, 0u);
    world.mgr.SetWal(wal.value().get());
    EXPECT_TRUE(CommitWrite(&world.mgr, IsoLevel::kSerializable, "x", 11));
    EXPECT_TRUE(CommitWrite(&world.mgr, IsoLevel::kSnapshot, "y", 22));
    world.mgr.SetWal(nullptr);
    wal.value()->Stop();
  }
  {
    // "Restart": a fresh store whose contents come only from the log. The
    // first incarnation's startup checkpoint captured the created items, so
    // no setup is needed here.
    Store store;
    LockManager locks;
    TxnManager mgr(&store, &locks);
    RecoveryResult rec;
    Result<std::unique_ptr<WriteAheadLog>> wal =
        WriteAheadLog::OpenDir(dir, &store, opts, &rec);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    EXPECT_EQ(rec.recovered_commits, 2u);
    EXPECT_EQ(rec.replayed_txns, 2u);
    EXPECT_EQ(ItemValue(store, "x"), 11);
    EXPECT_EQ(ItemValue(store, "y"), 22);
    // Ids resume above everything the log saw; the wal is usable as-is.
    mgr.ResetIds(rec.max_txn_id + 1);
    mgr.SetWal(wal.value().get());
    EXPECT_TRUE(CommitWrite(&mgr, IsoLevel::kSerializable, "x", 33));
    mgr.SetWal(nullptr);
    wal.value()->Stop();
  }
  {
    Store store;
    RecoveryResult rec;
    Result<std::unique_ptr<WriteAheadLog>> wal =
        WriteAheadLog::OpenDir(dir, &store, opts, &rec);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    EXPECT_EQ(rec.recovered_commits, 3u);
    EXPECT_EQ(ItemValue(store, "x"), 33);
    wal.value()->Stop();
  }
}

// ---- the explorer's byte-prefix crash matrix ----

TEST(WalTest, ExplorerCrashMatrixHoldsOnBankingMix) {
  const Workload workload = MakeBankingWorkload();
  ASSERT_FALSE(workload.explore_mixes.empty());
  const IsoLevel levels[] = {IsoLevel::kSerializable, IsoLevel::kSnapshot,
                             IsoLevel::kReadCommitted};
  for (IsoLevel level : levels) {
    SCOPED_TRACE(IsoLevelName(level));
    ExploreSession session;
    ASSERT_TRUE(
        session.Init(workload, workload.explore_mixes.front(), level).ok());
    Rng rng(1234);
    long total_points = 0, total_torn = 0;
    for (int n = 0; n < 5; ++n) {
      Schedule hints;
      session.Fuzz(rng, 256, &hints);
      const CrashMatrixResult cm = session.RunCrashMatrix(hints);
      EXPECT_TRUE(cm.ok()) << cm.Summary();
      EXPECT_TRUE(cm.complete);
      total_points += cm.points_checked;
      total_torn += cm.torn_points;
    }
    EXPECT_GT(total_points, 0);
    EXPECT_GT(total_torn, 0);  // mid-record cuts exercised the CRC path
  }
}

}  // namespace
}  // namespace semcor
