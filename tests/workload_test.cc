#include <gtest/gtest.h>

#include "sem/rt/oracle.h"
#include "workload/workload.h"

namespace semcor {
namespace {

class AllWorkloadsTest : public ::testing::TestWithParam<const char*> {
 protected:
  Workload Make() const {
    const std::string name = GetParam();
    if (name == "banking") return MakeBankingWorkload();
    if (name == "payroll") return MakePayrollWorkload();
    if (name == "mailing") return MakeMailingWorkload();
    if (name == "orders") return MakeOrdersWorkload(false);
    if (name == "orders_unique") return MakeOrdersWorkload(true);
    return MakeTpccWorkload();
  }
};

TEST_P(AllWorkloadsTest, SetupSatisfiesInvariant) {
  Workload w = Make();
  Store store;
  ASSERT_TRUE(w.setup(&store).ok());
  MapEvalContext state = store.SnapshotToMap();
  Result<bool> holds = EvalBool(w.app.invariant, state);
  ASSERT_TRUE(holds.ok()) << holds.status().ToString();
  EXPECT_TRUE(holds.value());
}

TEST_P(AllWorkloadsTest, InstantiateProducesRunnablePrograms) {
  Workload w = Make();
  Rng rng(7);
  for (const TransactionType& type : w.app.types) {
    auto program = w.instantiate(type.name, rng);
    ASSERT_NE(program, nullptr) << type.name;
    EXPECT_EQ(program->type_name, type.name);
  }
  EXPECT_EQ(w.instantiate("NoSuchType", rng), nullptr);
}

TEST_P(AllWorkloadsTest, MixCoversKnownTypes) {
  Workload w = Make();
  ASSERT_FALSE(w.mix.empty());
  for (const auto& [type, weight] : w.mix) {
    EXPECT_GT(weight, 0.0);
    bool found = false;
    for (const TransactionType& t : w.app.types) found |= t.name == type;
    EXPECT_TRUE(found) << type;
  }
}

TEST_P(AllWorkloadsTest, PaperLevelsCoverAllMixTypes) {
  Workload w = Make();
  for (const auto& [type, weight] : w.mix) {
    EXPECT_TRUE(w.paper_levels.count(type)) << type;
  }
}

TEST_P(AllWorkloadsTest, SerialRandomExecutionStaysSemanticallysCorrect) {
  Workload w = Make();
  Store store;
  ASSERT_TRUE(w.setup(&store).ok());
  LockManager locks;
  TxnManager mgr(&store, &locks);
  CommitLog log;
  MapEvalContext initial = store.SnapshotToMap();
  Rng rng(42);
  const std::map<std::string, IsoLevel> levels = w.paper_levels;
  for (int i = 0; i < 30; ++i) {
    WorkItem item = w.DrawFromMix(rng, levels, IsoLevel::kSerializable);
    ASSERT_NE(item.program, nullptr);
    ProgramRun run(&mgr, item.program, item.level, &log);
    StepOutcome outcome = run.RunToCompletion();
    EXPECT_TRUE(outcome == StepOutcome::kCommitted ||
                outcome == StepOutcome::kAborted)
        << item.program->instance_label;
  }
  OracleReport report =
      CheckSemanticCorrectness(initial, store, log, w.app.invariant);
  EXPECT_TRUE(report.ok()) << GetParam() << ": " << report.ToString();
}

INSTANTIATE_TEST_SUITE_P(Workloads, AllWorkloadsTest,
                         ::testing::Values("banking", "payroll", "mailing",
                                           "orders", "orders_unique", "tpcc"));

TEST(WorkloadTest, DrawFromMixRespectsLevels) {
  Workload w = MakeBankingWorkload();
  Rng rng(3);
  std::map<std::string, IsoLevel> levels = {
      {"Withdraw_sav", IsoLevel::kSnapshot}};
  for (int i = 0; i < 20; ++i) {
    WorkItem item = w.DrawFromMix(rng, levels, IsoLevel::kReadCommitted);
    if (item.program->type_name == "Withdraw_sav") {
      EXPECT_EQ(item.level, IsoLevel::kSnapshot);
    } else {
      EXPECT_EQ(item.level, IsoLevel::kReadCommitted);
    }
  }
}

}  // namespace
}  // namespace semcor
