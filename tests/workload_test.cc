#include <gtest/gtest.h>

#include "sem/rt/oracle.h"
#include "workload/workload.h"

namespace semcor {
namespace {

class AllWorkloadsTest : public ::testing::TestWithParam<const char*> {
 protected:
  Workload Make() const {
    const std::string name = GetParam();
    if (name == "banking") return MakeBankingWorkload();
    if (name == "payroll") return MakePayrollWorkload();
    if (name == "mailing") return MakeMailingWorkload();
    if (name == "orders") return MakeOrdersWorkload(false);
    if (name == "orders_unique") return MakeOrdersWorkload(true);
    return MakeTpccWorkload();
  }
};

TEST_P(AllWorkloadsTest, SetupSatisfiesInvariant) {
  Workload w = Make();
  Store store;
  ASSERT_TRUE(w.setup(&store).ok());
  MapEvalContext state = store.SnapshotToMap();
  Result<bool> holds = EvalBool(w.app.invariant, state);
  ASSERT_TRUE(holds.ok()) << holds.status().ToString();
  EXPECT_TRUE(holds.value());
}

TEST_P(AllWorkloadsTest, InstantiateProducesRunnablePrograms) {
  Workload w = Make();
  Rng rng(7);
  for (const TransactionType& type : w.app.types) {
    auto program = w.instantiate(type.name, rng);
    ASSERT_NE(program, nullptr) << type.name;
    EXPECT_EQ(program->type_name, type.name);
  }
  EXPECT_EQ(w.instantiate("NoSuchType", rng), nullptr);
}

TEST_P(AllWorkloadsTest, MixCoversKnownTypes) {
  Workload w = Make();
  ASSERT_FALSE(w.mix.empty());
  for (const auto& [type, weight] : w.mix) {
    EXPECT_GT(weight, 0.0);
    bool found = false;
    for (const TransactionType& t : w.app.types) found |= t.name == type;
    EXPECT_TRUE(found) << type;
  }
}

TEST_P(AllWorkloadsTest, PaperLevelsCoverAllMixTypes) {
  Workload w = Make();
  for (const auto& [type, weight] : w.mix) {
    EXPECT_TRUE(w.paper_levels.count(type)) << type;
  }
}

TEST_P(AllWorkloadsTest, SerialRandomExecutionStaysSemanticallysCorrect) {
  Workload w = Make();
  Store store;
  ASSERT_TRUE(w.setup(&store).ok());
  LockManager locks;
  TxnManager mgr(&store, &locks);
  CommitLog log;
  MapEvalContext initial = store.SnapshotToMap();
  Rng rng(42);
  const std::map<std::string, IsoLevel> levels = w.paper_levels;
  for (int i = 0; i < 30; ++i) {
    WorkItem item = w.DrawFromMix(rng, levels, IsoLevel::kSerializable);
    ASSERT_NE(item.program, nullptr);
    ProgramRun run(&mgr, item.program, item.level, &log);
    StepOutcome outcome = run.RunToCompletion();
    EXPECT_TRUE(outcome == StepOutcome::kCommitted ||
                outcome == StepOutcome::kAborted)
        << item.program->instance_label;
  }
  OracleReport report =
      CheckSemanticCorrectness(initial, store, log, w.app.invariant);
  EXPECT_TRUE(report.ok()) << GetParam() << ": " << report.ToString();
}

INSTANTIATE_TEST_SUITE_P(Workloads, AllWorkloadsTest,
                         ::testing::Values("banking", "payroll", "mailing",
                                           "orders", "orders_unique", "tpcc"));

// TPC-C consistency conditions (lite analogues of clause 3.3.2) under real
// concurrency: the oracle's invariant — stock non-negative, order ids
// bounded, district revenue matching order lines, customer balances
// conserved, warehouse YTDs accounting for every payment — must hold both
// at all-SERIALIZABLE and at the advisor's mixed levels.
class TpccConsistencyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(TpccConsistencyTest, ConcurrentMixPreservesConsistencyConditions) {
  Workload w = MakeTpccWorkload(/*warehouses=*/2);
  Store store;
  ASSERT_TRUE(w.setup(&store).ok());
  LockManager locks;
  TxnManager mgr(&store, &locks);
  CommitLog log;
  MapEvalContext initial = store.SnapshotToMap();

  std::map<std::string, IsoLevel> levels;
  if (std::string(GetParam()) == "advisor") {
    levels = w.paper_levels;
  } else {
    for (const auto& [type, weight] : w.mix) {
      levels[type] = IsoLevel::kSerializable;
    }
  }
  ConcurrentExecutor executor(&mgr, 3);
  double wall = 0;
  ExecStats stats = executor.Run(
      [&](Rng& rng) {
        return w.DrawFromMix(rng, levels, IsoLevel::kSerializable);
      },
      40, 20, &log, &wall);
  EXPECT_GT(stats.committed, 0);
  EXPECT_EQ(stats.retries_exhausted, 0);

  OracleReport report =
      CheckSemanticCorrectness(initial, store, log, w.app.invariant);
  EXPECT_TRUE(report.ok()) << GetParam() << ": " << report.ToString();
  // The conditions also hold in the live final state, not just the replay.
  MapEvalContext final_state = store.SnapshotToMap();
  Result<bool> holds = EvalBool(w.app.invariant, final_state);
  ASSERT_TRUE(holds.ok()) << holds.status().ToString();
  EXPECT_TRUE(holds.value());
}

INSTANTIATE_TEST_SUITE_P(Levels, TpccConsistencyTest,
                         ::testing::Values("serializable", "advisor"));

TEST(TpccWorkloadTest, ForcedRollbackUndoesTheWholeOrder) {
  Workload w = MakeTpccWorkload();
  Store store;
  ASSERT_TRUE(w.setup(&store).ok());
  LockManager locks;
  TxnManager mgr(&store, &locks);
  auto program = w.InstantiateWith(
      "TNewOrder", {{"d", Value::Int(0)},
                    {"c", Value::Int(0)},
                    {"item", Value::Int(0)},
                    {"supply_w", Value::Int(0)},
                    {"qty", Value::Int(2)},
                    {"rollback", Value::Bool(true)}});
  ASSERT_NE(program, nullptr);
  ProgramRun run(&mgr, program, IsoLevel::kSerializable);
  EXPECT_EQ(run.RunToCompletion(), StepOutcome::kAborted);
  EXPECT_TRUE(run.UserAborted());
  // Everything the order entry touched is rolled back: the allocated id,
  // the order row, the order line, and the district revenue.
  MapEvalContext after = store.SnapshotToMap();
  const Expr untouched =
      And({Eq(DbVar("district[0].next_o_id"), Lit(int64_t{1})),
           Eq(DbVar("district[0].ytd"), Lit(int64_t{0})),
           Eq(Count("OORDER", True()), Lit(int64_t{0})),
           Eq(Count("OLINE", True()), Lit(int64_t{0}))});
  Result<bool> clean = EvalBool(untouched, after);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_TRUE(clean.value());
}

TEST(TpccWorkloadTest, ReadOnlyTypesDeclareItAndThinkTimesCoverTheMix) {
  Workload w = MakeTpccWorkload();
  Rng rng(11);
  for (const auto& [type, weight] : w.mix) {
    auto program = w.instantiate(type, rng);
    ASSERT_NE(program, nullptr) << type;
    const bool expect_ro = type == "TOrderStatus" || type == "TStockLevel";
    EXPECT_EQ(program->declared_read_only, expect_ro) << type;
    EXPECT_TRUE(w.think_time_us.count(type)) << type;
  }
}

TEST(WorkloadTest, DrawFromMixRespectsLevels) {
  Workload w = MakeBankingWorkload();
  Rng rng(3);
  std::map<std::string, IsoLevel> levels = {
      {"Withdraw_sav", IsoLevel::kSnapshot}};
  for (int i = 0; i < 20; ++i) {
    WorkItem item = w.DrawFromMix(rng, levels, IsoLevel::kReadCommitted);
    if (item.program->type_name == "Withdraw_sav") {
      EXPECT_EQ(item.level, IsoLevel::kSnapshot);
    } else {
      EXPECT_EQ(item.level, IsoLevel::kReadCommitted);
    }
  }
}

}  // namespace
}  // namespace semcor
