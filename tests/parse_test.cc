#include <gtest/gtest.h>

#include "sem/expr/eval.h"
#include "sem/expr/parse.h"
#include "sem/expr/simplify.h"

namespace semcor {
namespace {

Expr MustParse(const std::string& text) {
  Result<Expr> e = ParseExpr(text);
  EXPECT_TRUE(e.ok()) << text << ": " << e.status().ToString();
  return e.ok() ? e.value() : nullptr;
}

TEST(ParseTest, LiteralsAndVariables) {
  EXPECT_TRUE(ExprEquals(MustParse("42"), Lit(int64_t{42})));
  EXPECT_TRUE(ExprEquals(MustParse("true"), True()));
  EXPECT_TRUE(ExprEquals(MustParse("\"abc\""), Lit(std::string("abc"))));
  EXPECT_TRUE(ExprEquals(MustParse("x"), DbVar("x")));
  EXPECT_TRUE(ExprEquals(MustParse("$Sav"), Local("Sav")));
  EXPECT_TRUE(ExprEquals(MustParse("#SAV0"), Logical("SAV0")));
  EXPECT_TRUE(
      ExprEquals(MustParse("acct_sav[1].bal"), DbVar("acct_sav[1].bal")));
}

TEST(ParseTest, Precedence) {
  // * binds tighter than +, + tighter than comparison, comparison tighter
  // than &&, && tighter than ||, => loosest.
  Expr e = MustParse("1 + 2 * 3 == 7 && x > 0 || y < 0 => true");
  Expr expected =
      Implies(Or(And(Eq(Add(Lit(int64_t{1}), Mul(Lit(int64_t{2}),
                                                 Lit(int64_t{3}))),
                        Lit(int64_t{7})),
                     Gt(DbVar("x"), Lit(int64_t{0}))),
                 Lt(DbVar("y"), Lit(int64_t{0}))),
              True());
  EXPECT_TRUE(ExprEquals(e, expected)) << ToString(e);
}

TEST(ParseTest, UnaryAndParens) {
  EXPECT_TRUE(ExprEquals(MustParse("-(x + 1)"),
                         Neg(Add(DbVar("x"), Lit(int64_t{1})))));
  EXPECT_TRUE(ExprEquals(MustParse("!(x == y)"),
                         Not(Eq(DbVar("x"), DbVar("y")))));
  EXPECT_TRUE(ExprEquals(MustParse("((x))"), DbVar("x")));
}

TEST(ParseTest, ImpliesIsRightAssociative) {
  Expr e = MustParse("x > 0 => y > 0 => z > 0");
  ASSERT_EQ(e->op, Op::kImplies);
  EXPECT_EQ(e->kids[1]->op, Op::kImplies);
}

TEST(ParseTest, Aggregates) {
  EXPECT_TRUE(ExprEquals(
      MustParse("count(ORDERS | .cust_name == $customer)"),
      Count("ORDERS", Eq(Attr("cust_name"), Local("customer")))));
  EXPECT_TRUE(ExprEquals(MustParse("sum(OLINE.amount | .d_id == 1)"),
                         SumOf("OLINE", "amount",
                               Eq(Attr("d_id"), Lit(int64_t{1})))));
  EXPECT_TRUE(ExprEquals(MustParse("max(ORDERS.deliv_date | true, dflt = 0)"),
                         MaxOf("ORDERS", "deliv_date", True(), 0)));
  EXPECT_TRUE(ExprEquals(MustParse("min(STOCK.quantity | true, dflt = -1)"),
                         MinOf("STOCK", "quantity", True(), -1)));
  EXPECT_TRUE(ExprEquals(MustParse("exists(CUST | .name == \"a\")"),
                         Exists("CUST", Eq(Attr("name"), Lit(std::string("a"))))));
  EXPECT_TRUE(ExprEquals(
      MustParse("forall(EMP | .id == 1 : 10 * .num_hrs == .sal)"),
      Forall("EMP", Eq(Attr("id"), Lit(int64_t{1})),
             Eq(Mul(Lit(int64_t{10}), Attr("num_hrs")), Attr("sal")))));
}

TEST(ParseTest, AggregateKeywordAsItemName) {
  // "max" without '(' is a database item, not an aggregate.
  EXPECT_TRUE(ExprEquals(MustParse("max + 1"),
                         Add(DbVar("max"), Lit(int64_t{1}))));
}

TEST(ParseTest, PaperAssertions) {
  // Figure 1's read-step postcondition.
  Expr fig1 = MustParse(
      "acct_sav[1].bal + acct_ch[1].bal >= 0 && "
      "acct_sav[1].bal + acct_ch[1].bal >= $Sav + $Ch && $Sav == #SAV0");
  EXPECT_EQ(Conjuncts(Simplify(fig1)).size(), 3u);
  // The one-order-per-day invariant.
  Expr uniq = MustParse("count(ORDERS | true) == maximum_date");
  ASSERT_EQ(uniq->op, Op::kEq);
  EXPECT_EQ(uniq->kids[0]->op, Op::kCount);
}

TEST(ParseTest, ParsedExpressionsEvaluate) {
  MapEvalContext ctx;
  ctx.SetDb("x", Value::Int(4));
  ctx.SetLocal("w", Value::Int(2));
  ctx.AddTuple("T", {{"k", Value::Int(1)}, {"v", Value::Int(10)}});
  ctx.AddTuple("T", {{"k", Value::Int(2)}, {"v", Value::Int(20)}});
  Result<bool> v = EvalBool(
      MustParse("x - $w == 2 && sum(T.v | .k >= 1) == 30"), ctx);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_TRUE(v.value());
}

TEST(ParseTest, Errors) {
  EXPECT_FALSE(ParseExpr("").ok());
  EXPECT_FALSE(ParseExpr("1 +").ok());
  EXPECT_FALSE(ParseExpr("(x").ok());
  EXPECT_FALSE(ParseExpr("\"unterminated").ok());
  EXPECT_FALSE(ParseExpr("x == 1 extra").ok());
  EXPECT_FALSE(ParseExpr("forall(T | x)").ok());   // missing ':'
  EXPECT_FALSE(ParseExpr("sum(T | x)").ok());      // missing '.attr'
  EXPECT_FALSE(ParseExpr("count(| x)").ok());      // missing table
  const Status err = ParseExpr("x == ==").status();
  EXPECT_NE(err.message().find("offset"), std::string::npos);
}

/// Round-trip over a catalogue of representative assertions: parse, then
/// parse the printer's output again and compare semantics structurally.
class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, ParsePrintParse) {
  Expr first = MustParse(GetParam());
  ASSERT_NE(first, nullptr);
  Result<Expr> second = ParseExpr(ToString(first));
  ASSERT_TRUE(second.ok()) << ToString(first) << ": "
                           << second.status().ToString();
  // The printer marks logical variables with a trailing '#', which the
  // parser does not read back, so compare modulo that by re-printing.
  EXPECT_EQ(ToString(first), ToString(second.value()));
}

INSTANTIATE_TEST_SUITE_P(
    Catalogue, RoundTripTest,
    ::testing::Values("((x + y) >= 0)", "(1 + (2 * z))",
                      "count(ORDERS | (.done == false))",
                      "forall(EMP | (.id == 1) : ((10 * .h) == .s))",
                      "(exists(CUST | (.name == \"a\")) || (x < 3))",
                      "max(ORDERS.deliv_date | true, dflt=0)",
                      "((x > 0) => ((y > 0) => (z > 0)))"));

}  // namespace
}  // namespace semcor
