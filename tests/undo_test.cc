#include <gtest/gtest.h>

#include "fault/fault.h"
#include "sem/check/theorems.h"
#include "sem/expr/simplify.h"
#include "sem/prog/builder.h"
#include "txn/driver.h"

namespace semcor {
namespace {

SchemaShapes Shapes() {
  SchemaShapes shapes;
  shapes["T"] = TableShape{
      {{"k", Value::Type::kInt}, {"v", Value::Type::kInt}}};
  return shapes;
}

TEST(UndoTest, WriteUndoRestoresConstrainedValue) {
  ProgramBuilder b("W");
  // The write's annotation constrains the pre-state value of x.
  b.Pre(And(Ge(DbVar("x"), Lit(int64_t{0})), Ge(Local("d"), Lit(int64_t{0}))))
      .Write("x", Add(DbVar("x"), Local("d")));
  TxnProgram p = b.Build({});
  std::vector<StmtPtr> undos = SynthesizeUndoWrites(p, True(), {});
  ASSERT_EQ(undos.size(), 1u);
  EXPECT_EQ(undos[0]->kind, StmtKind::kWrite);
  EXPECT_EQ(undos[0]->item, "x");
  // The restored value inherits exactly the conjuncts about x alone:
  // here x >= 0 (the local-variable conjunct must be dropped).
  FreeVars fv = CollectFreeVars(undos[0]->pre);
  EXPECT_TRUE(fv.db.empty());
  EXPECT_EQ(fv.locals.size(), 1u);  // the fresh restored-value local
  EXPECT_NE(undos[0]->label.find("undo"), std::string::npos);
}

TEST(UndoTest, WriteUndoWithLogicalConstraint) {
  ProgramBuilder b("W");
  b.Logical("X0", "x");
  b.Pre(Eq(DbVar("x"), Logical("X0"))).Write("x", Lit(int64_t{5}));
  TxnProgram p = b.Build({});
  std::vector<StmtPtr> undos = SynthesizeUndoWrites(p, True(), {});
  ASSERT_EQ(undos.size(), 1u);
  // Rigid logical variables survive into the undo constraint: the restored
  // value *is* X0.
  FreeVars fv = CollectFreeVars(undos[0]->pre);
  EXPECT_EQ(fv.logicals.count("X0"), 1u);
}

TEST(UndoTest, InsertUndoIsPointDelete) {
  ProgramBuilder b("I");
  b.Insert("T", {{"k", Lit(int64_t{1})}, {"v", Local("val")}});
  TxnProgram p = b.Build({});
  std::vector<StmtPtr> undos = SynthesizeUndoWrites(p, True(), Shapes());
  ASSERT_EQ(undos.size(), 1u);
  EXPECT_EQ(undos[0]->kind, StmtKind::kDelete);
  EXPECT_EQ(undos[0]->table, "T");
  // The delete predicate pins every inserted attribute.
  FreeVars fv = CollectFreeVars(undos[0]->pred);
  EXPECT_EQ(fv.locals.count("val"), 1u);
}

TEST(UndoTest, DeleteUndoReinsertsInvariantRespectingTuple) {
  ProgramBuilder b("D");
  b.Delete("T", Eq(Attr("k"), Lit(int64_t{1})));
  TxnProgram p = b.Build({});
  const Expr invariant = Forall("T", True(), Ge(Attr("v"), Lit(int64_t{0})));
  std::vector<StmtPtr> undos = SynthesizeUndoWrites(p, invariant, Shapes());
  ASSERT_EQ(undos.size(), 1u);
  EXPECT_EQ(undos[0]->kind, StmtKind::kInsert);
  // Every schema attribute gets a fresh local value...
  EXPECT_EQ(undos[0]->values.size(), 2u);
  // ...constrained by the table's per-tuple invariant conjuncts.
  EXPECT_FALSE(IsTrueLiteral(Simplify(undos[0]->pre)));
}

TEST(UndoTest, UpdateUndoRewritesTouchedAttrs) {
  ProgramBuilder b("U");
  b.Update("T", Eq(Attr("k"), Lit(int64_t{1})),
           {{"v", Add(Attr("v"), Lit(int64_t{3}))}});
  TxnProgram p = b.Build({});
  std::vector<StmtPtr> undos = SynthesizeUndoWrites(p, True(), Shapes());
  ASSERT_EQ(undos.size(), 1u);
  EXPECT_EQ(undos[0]->kind, StmtKind::kUpdate);
  EXPECT_EQ(undos[0]->sets.size(), 1u);
  EXPECT_EQ(undos[0]->sets.count("v"), 1u);
}

TEST(UndoTest, OneUndoPerWrite) {
  ProgramBuilder b("Multi");
  b.Write("x", Lit(int64_t{1}));
  b.Insert("T", {{"k", Lit(int64_t{1})}, {"v", Lit(int64_t{2})}});
  b.Update("T", True(), {{"v", Lit(int64_t{0})}});
  b.Delete("T", True());
  b.Read("Y", "y");  // not a write: no undo
  TxnProgram p = b.Build({});
  EXPECT_EQ(SynthesizeUndoWrites(p, True(), Shapes()).size(), 4u);
}

// ---- Runtime counterpart: undo writes as schedulable events ----

TEST(UndoTest, ReadUncommittedObservesMidRollbackValue) {
  // Theorem 1 treats the undo writes an abort generates as writes in their
  // own right: at READ UNCOMMITTED, a concurrent reader can observe the
  // database between them. This scripts exactly that schedule — the static
  // tests above synthesize the undo writes; here the runtime plays them out
  // one step at a time and the reader's dirty read is classified as a read
  // of a rolling-back transaction's value.
  Store store;
  LockManager locks;
  TxnManager mgr(&store, &locks);
  ASSERT_TRUE(store.CreateItem("x", Value::Int(0)).ok());

  ProgramBuilder bw("Writer");
  bw.Write("x", Lit(int64_t{100}));
  ProgramBuilder br("Reader");
  br.Read("X", "x");

  FaultPlan plan;
  // Pinned to the writer (eager begin: first Add = txn id 1); the reader's
  // own commit must stay fault-free.
  plan.script.push_back(
      {FaultSite::kCommit, /*txn=*/1, 1, FaultKind::kCrashBeforeCommit});
  FaultInjector inj(plan);
  inj.BeginRun();

  StepDriver driver(&mgr, nullptr);
  driver.SetSchedulableRollback(true);
  driver.SetFaultInjector(&inj);
  const int w = driver.Add(std::make_shared<TxnProgram>(bw.Build({})),
                           IsoLevel::kReadCommitted);
  const int r = driver.Add(std::make_shared<TxnProgram>(br.Build({})),
                           IsoLevel::kReadUncommitted);

  int undo_steps = 0;
  driver.SetObserver([&](const StepEvent& ev) {
    if (ev.undo_write) ++undo_steps;
  });

  // w1(x) · crash at commit · r2(x) while w is mid-rollback · undo steps.
  ASSERT_EQ(driver.Step(w), StepOutcome::kRunning);      // w1(x := 100)
  ASSERT_EQ(driver.Step(w), StepOutcome::kRollingBack);  // crash, not undone
  ASSERT_EQ(driver.Step(r), StepOutcome::kRunning);      // r2 reads dirty 100
  EXPECT_EQ(driver.run(r).txn().locals.at("X").AsInt(), 100);
  EXPECT_EQ(driver.run(r).txn().undo_dirty_reads, 1);
  ASSERT_EQ(driver.Step(w), StepOutcome::kRollingBack);  // u1: restore x = 0
  EXPECT_EQ(undo_steps, 1);
  EXPECT_EQ(store.ReadItemLatest("x").value().AsInt(), 0);
  ASSERT_EQ(driver.Step(w), StepOutcome::kAborted);      // release locks
  ASSERT_EQ(driver.Step(r), StepOutcome::kCommitted);
  // The reader committed a value no committed state ever contained — the
  // inconsistency Theorem 1's non-interference conditions exist to exclude.
  EXPECT_EQ(store.ReadItemCommitted("x").value().AsInt(), 0);
}

// ---- ReadStepPostcondition (Theorem 5's two-step model) ----

TEST(ReadStepTest, FirstWriteAnnotationIsTheReadStepPost) {
  ProgramBuilder b("T");
  b.Pre(True()).Read("X", "x");
  const Expr read_post = Ge(Local("X"), Lit(int64_t{0}));
  b.Pre(read_post).Write("y", Local("X"));
  TxnProgram p = b.Build({});
  EXPECT_TRUE(ExprEquals(ReadStepPostcondition(p), read_post));
}

TEST(ReadStepTest, WriteInsideBranchFound) {
  ProgramBuilder b("T");
  b.Pre(True()).Read("X", "x");
  const Expr read_post = Gt(Local("X"), Lit(int64_t{5}));
  b.Pre(True()).If(Gt(Local("X"), Lit(int64_t{5})),
                   [&](ProgramBuilder& t) {
                     t.Pre(read_post).Write("y", Local("X"));
                   });
  TxnProgram p = b.Build({});
  EXPECT_TRUE(ExprEquals(ReadStepPostcondition(p), read_post));
}

TEST(ReadStepTest, ReadOnlyTxnUsesPostcondition) {
  ProgramBuilder b("T");
  b.Pre(True()).Read("X", "x");
  b.Result(Ge(Local("X"), Lit(int64_t{0})));
  TxnProgram p = b.Build({});
  EXPECT_TRUE(ExprEquals(ReadStepPostcondition(p), p.Postcondition()));
}

}  // namespace
}  // namespace semcor
