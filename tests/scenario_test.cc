// Analysis scenarios: the engine instantiates each transaction type once per
// scenario and takes the worst case, which is how parameter aliasing
// ("same account" vs "different accounts") is explored (§5 analyzes types,
// instances alias through parameters).

#include <gtest/gtest.h>

#include "sem/check/theorems.h"
#include "sem/prog/builder.h"

namespace semcor {
namespace {

/// inc(i): x_i := x_i + 1 with Q_i asserting the exact increment.
TransactionType MakeCounter(std::vector<std::map<std::string, Value>> scenarios) {
  TransactionType type;
  type.name = "Inc";
  type.make = [](const std::map<std::string, Value>& params) {
    const std::string item = ItemName("x", params.at("i").AsInt());
    ProgramBuilder b("Inc");
    b.Logical("X0", item);
    b.Pre(True()).Read("X", item);
    b.Pre(Eq(Local("X"), Logical("X0")))
        .Write(item, Add(Local("X"), Lit(int64_t{1})));
    b.Result(Eq(DbVar(item), Add(Logical("X0"), Lit(int64_t{1}))));
    return b.Build(params);
  };
  type.analysis_scenarios = std::move(scenarios);
  return type;
}

Application App(std::vector<std::map<std::string, Value>> scenarios) {
  Application app;
  app.name = "counters";
  app.types = {MakeCounter(std::move(scenarios))};
  return app;
}

TEST(ScenarioTest, DisjointInstancesInterferOnlyWithTheirAlias) {
  // Two scenarios on different counters: each target instance still fails
  // READ COMMITTED — against a fresh instance of ITSELF (two Inc(i=1) can
  // always run concurrently) — while the cross-scenario obligation passes
  // by the frame rule.
  Application app = App({{{"i", Value::Int(1)}}, {{"i", Value::Int(2)}}});
  TheoremEngine engine(app, CheckOptions());
  LevelCheckReport report =
      engine.CheckAtLevel("Inc", IsoLevel::kReadCommitted);
  EXPECT_FALSE(report.correct);
  for (const Obligation& o : report.obligations) {
    // i=1 target vs i=2 instance (and vice versa) never interferes.
    const bool cross = (o.assertion.find("x[1]") != std::string::npos &&
                        o.source.find("i=2") != std::string::npos) ||
                       (o.assertion.find("x[2]") != std::string::npos &&
                        o.source.find("i=1") != std::string::npos);
    if (cross) EXPECT_TRUE(o.Passed()) << o.assertion << " vs " << o.source;
  }
}

TEST(ScenarioTest, AliasedInstancesFailReadCommitted) {
  // Two instances on the SAME counter: Q_i (x == X0 + 1) is interfered with
  // by the other instance (the classic lost update).
  Application app = App({{{"i", Value::Int(1)}}, {{"i", Value::Int(1)}}});
  TheoremEngine engine(app, CheckOptions());
  EXPECT_FALSE(engine.CheckAtLevel("Inc", IsoLevel::kReadCommitted).correct);
}

TEST(ScenarioTest, WorstCaseAcrossScenarios) {
  // Mixed scenarios: adding the aliased pair to the disjoint one must make
  // the overall verdict incorrect (the engine takes the worst case).
  Application app = App({{{"i", Value::Int(1)}},
                         {{"i", Value::Int(2)}},
                         {{"i", Value::Int(1)}}});
  TheoremEngine engine(app, CheckOptions());
  LevelCheckReport report =
      engine.CheckAtLevel("Inc", IsoLevel::kReadCommitted);
  EXPECT_FALSE(report.correct);
  // But the aliased pair is excused under SNAPSHOT (write sets intersect).
  EXPECT_TRUE(engine.CheckAtLevel("Inc", IsoLevel::kSnapshot).correct);
}

TEST(ScenarioTest, SingleScenarioStillSelfChecks) {
  // Even one scenario checks the type against a fresh instance of itself
  // (the "o::" renaming prevents capture).
  Application app = App({{{"i", Value::Int(1)}}});
  TheoremEngine engine(app, CheckOptions());
  EXPECT_FALSE(engine.CheckAtLevel("Inc", IsoLevel::kReadCommitted).correct);
  EXPECT_TRUE(engine.CheckAtLevel("Inc", IsoLevel::kRepeatableRead).correct);
}

}  // namespace
}  // namespace semcor
