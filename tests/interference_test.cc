#include <gtest/gtest.h>

#include "sem/check/interference.h"
#include "sem/prog/builder.h"

namespace semcor {
namespace {

class InterferenceTest : public ::testing::Test {
 protected:
  InterferenceTest() : checker_(Shapes(), CheckOptions()) {}

  static SchemaShapes Shapes() {
    SchemaShapes shapes;
    shapes["T"] = TableShape{
        {{"k", Value::Type::kInt}, {"v", Value::Type::kInt}}};
    return shapes;
  }

  InterferenceChecker checker_;
};

Stmt WriteStmt(const std::string& item, Expr value, Expr pre) {
  Stmt s;
  s.kind = StmtKind::kWrite;
  s.item = item;
  s.expr = std::move(value);
  s.pre = std::move(pre);
  return s;
}

TEST_F(InterferenceTest, FrameRuleDisjointItem) {
  Stmt w = WriteStmt("y", Lit(int64_t{0}), True());
  InterferenceResult r = checker_.CheckStmt(Gt(DbVar("x"), Lit(int64_t{0})), w);
  EXPECT_EQ(r.verdict, Interference::kNoInterference);
}

TEST_F(InterferenceTest, IncrementPreservesLowerBound) {
  // The paper's §2 example: x := x + 1 invalidates x == y but not x > y.
  Stmt w = WriteStmt("x", Add(Local("o::X"), Lit(int64_t{1})),
                     Eq(Local("o::X"), DbVar("x")));
  InterferenceResult gt =
      checker_.CheckStmt(Gt(DbVar("x"), DbVar("y")), w);
  EXPECT_EQ(gt.verdict, Interference::kNoInterference);
  InterferenceResult eq =
      checker_.CheckStmt(Eq(DbVar("x"), DbVar("y")), w);
  EXPECT_EQ(eq.verdict, Interference::kInterference);
}

TEST_F(InterferenceTest, UnconstrainedWriteInterferes) {
  Stmt w = WriteStmt("x", Local("o::v"), True());
  InterferenceResult r =
      checker_.CheckStmt(Ge(DbVar("x"), Lit(int64_t{0})), w);
  EXPECT_EQ(r.verdict, Interference::kInterference);
}

TEST_F(InterferenceTest, ConstrainedWritePreserves) {
  // Writing a value known non-negative preserves x >= 0.
  Stmt w = WriteStmt("x", Local("o::v"),
                     Ge(Local("o::v"), Lit(int64_t{0})));
  InterferenceResult r =
      checker_.CheckStmt(Ge(DbVar("x"), Lit(int64_t{0})), w);
  EXPECT_EQ(r.verdict, Interference::kNoInterference);
}

TEST_F(InterferenceTest, InsertPreservingInvariant) {
  Stmt s;
  s.kind = StmtKind::kInsert;
  s.table = "T";
  s.values = {{"k", Lit(int64_t{1})}, {"v", Lit(int64_t{5})}};
  s.pre = True();
  Expr inv = Forall("T", True(), Ge(Attr("v"), Lit(int64_t{0})));
  EXPECT_EQ(checker_.CheckStmt(inv, s).verdict,
            Interference::kNoInterference);
  // A violating insert is real interference.
  s.values["v"] = Lit(int64_t{-5});
  EXPECT_EQ(checker_.CheckStmt(inv, s).verdict, Interference::kInterference);
}

TEST_F(InterferenceTest, DeleteInterferesWithExists) {
  Stmt s;
  s.kind = StmtKind::kDelete;
  s.table = "T";
  s.pred = Eq(Attr("k"), Lit(int64_t{1}));
  s.pre = True();
  Expr p = Exists("T", Eq(Attr("k"), Lit(int64_t{1})));
  EXPECT_EQ(checker_.CheckStmt(p, s).verdict, Interference::kInterference);
  // Disjoint delete is safe.
  s.pred = Eq(Attr("k"), Lit(int64_t{2}));
  EXPECT_EQ(checker_.CheckStmt(p, s).verdict,
            Interference::kNoInterference);
}

// ---- whole-transaction checks ----

TxnProgram IncrementTxn(const std::string& item) {
  ProgramBuilder b("Inc");
  b.Pre(True()).Read("X", item);
  b.Pre(True()).Write(item, Add(Local("X"), Lit(int64_t{1})));
  return b.Build({});
}

TEST_F(InterferenceTest, TxnFrameRule) {
  TxnProgram inc = PrepareForAnalysis(IncrementTxn("y"), "o::");
  EXPECT_EQ(checker_.CheckTxn(Ge(DbVar("x"), Lit(int64_t{0})), inc).verdict,
            Interference::kNoInterference);
}

TEST_F(InterferenceTest, PathwiseIncrementPreservesBound) {
  TxnProgram inc = PrepareForAnalysis(IncrementTxn("x"), "o::");
  EXPECT_EQ(checker_.CheckTxn(Ge(DbVar("x"), Lit(int64_t{0})), inc).verdict,
            Interference::kNoInterference);
  EXPECT_EQ(checker_.CheckTxn(Le(DbVar("x"), Lit(int64_t{5})), inc).verdict,
            Interference::kInterference);
}

TEST_F(InterferenceTest, TemporarilyBrokenInvariantRestoredByUnit) {
  // x := x + d; y := y - d preserves x + y == c as a unit, though each
  // write alone breaks it. Pathwise wp must prove it.
  ProgramBuilder b("Move");
  b.Pre(True()).Read("X", "x");
  b.Pre(True()).Write("x", Add(Local("X"), Local("d")));
  b.Pre(True()).Read("Y", "y");
  b.Pre(True()).Write("y", Sub(Local("Y"), Local("d")));
  TxnProgram mover =
      PrepareForAnalysis(b.Build({{"d", Value::Int(3)}}), "o::");
  Expr conserved = Eq(Add(DbVar("x"), DbVar("y")), Logical("C"));
  EXPECT_EQ(checker_.CheckTxn(conserved, mover).verdict,
            Interference::kNoInterference);
}

TEST_F(InterferenceTest, AbortedPathIsHarmless) {
  ProgramBuilder b("Aborter");
  b.Pre(True()).Write("x", Lit(int64_t{-100}));
  b.Abort();
  TxnProgram aborter = PrepareForAnalysis(b.Build({}), "o::");
  // As an atomic committed unit the aborted txn has no effect.
  EXPECT_EQ(checker_.CheckTxn(Ge(DbVar("x"), Lit(int64_t{0})), aborter).verdict,
            Interference::kNoInterference);
}

TEST_F(InterferenceTest, BranchesBothChecked) {
  ProgramBuilder b("Branchy");
  b.Pre(True()).Read("X", "x");
  b.Pre(True()).If(
      Gt(Local("X"), Lit(int64_t{0})),
      [](ProgramBuilder& t) {
        t.Pre(True()).Write("x", Add(Local("X"), Lit(int64_t{1})));
      },
      [](ProgramBuilder& e) {
        e.Pre(True()).Write("x", Lit(int64_t{-7}));
      });
  TxnProgram branchy = PrepareForAnalysis(b.Build({}), "o::");
  // The else-branch writes -7, so x >= 0 is not preserved.
  EXPECT_EQ(checker_.CheckTxn(Ge(DbVar("x"), Lit(int64_t{0})), branchy).verdict,
            Interference::kInterference);
}

TEST_F(InterferenceTest, GuardedBranchSafe) {
  ProgramBuilder b("Guarded");
  b.Pre(True()).Read("X", "x");
  b.Pre(True()).If(Ge(Local("X"), Lit(int64_t{5})),
                   [](ProgramBuilder& t) {
                     t.Pre(True()).Write(
                         "x", Sub(Local("X"), Lit(int64_t{5})));
                   });
  TxnProgram guarded = PrepareForAnalysis(b.Build({}), "o::");
  EXPECT_EQ(checker_.CheckTxn(Ge(DbVar("x"), Lit(int64_t{0})), guarded).verdict,
            Interference::kNoInterference);
}

TEST_F(InterferenceTest, ParamsAreSubstituted) {
  ProgramBuilder b("Deposit");
  b.BPart(Ge(Local("d"), Lit(int64_t{0})));
  b.Pre(True()).Read("X", "x");
  b.Pre(True()).Write("x", Add(Local("X"), Local("d")));
  TxnProgram dep = PrepareForAnalysis(b.Build({{"d", Value::Int(4)}}), "o::");
  // With d == 4 substituted the increment provably preserves x >= 0.
  EXPECT_EQ(checker_.CheckTxn(Ge(DbVar("x"), Lit(int64_t{0})), dep).verdict,
            Interference::kNoInterference);
  // And the b_part is concrete (no free o::d left).
  FreeVars fv = CollectFreeVars(dep.b_part);
  EXPECT_TRUE(fv.locals.empty());
}

TEST_F(InterferenceTest, WriteSkewDetected) {
  // Withdraw_ch against Withdraw_sav's read-step postcondition (Example 3).
  ProgramBuilder b("Withdraw_ch");
  b.BPart(Ge(Local("w"), Lit(int64_t{1})));
  b.Pre(True()).Read("Sav", "sav");
  b.Pre(True()).Read("Ch", "ch");
  b.Pre(True()).If(Ge(Add(Local("Sav"), Local("Ch")), Local("w")),
                   [](ProgramBuilder& t) {
                     t.Pre(True()).Write("ch",
                                         Sub(Local("Ch"), Local("w")));
                   });
  TxnProgram wch = PrepareForAnalysis(b.Build({{"w", Value::Int(2)}}), "o::");
  const Expr read_step_post =
      And({Ge(Add(DbVar("sav"), DbVar("ch")), Lit(int64_t{0})),
           Ge(Add(DbVar("sav"), DbVar("ch")),
              Add(Local("Sav"), Local("Ch")))});
  InterferenceResult r = checker_.CheckTxn(read_step_post, wch);
  EXPECT_EQ(r.verdict, Interference::kInterference) << r.detail;
}

}  // namespace
}  // namespace semcor
