#include <gtest/gtest.h>

#include "storage/store.h"

namespace semcor {
namespace {

Schema KvSchema() {
  return Schema({{"k", Value::Type::kInt}, {"v", Value::Type::kInt}});
}

TEST(StoreTest, ItemLifecycle) {
  Store store;
  ASSERT_TRUE(store.CreateItem("x", Value::Int(5)).ok());
  EXPECT_EQ(store.CreateItem("x", Value::Int(1)).code(), Code::kAlreadyExists);
  EXPECT_EQ(store.ReadItemLatest("x").value().AsInt(), 5);
  EXPECT_EQ(store.ReadItemLatest("y").status().code(), Code::kNotFound);
}

TEST(StoreTest, UncommittedVisibleOnlyToLatestReads) {
  Store store;
  ASSERT_TRUE(store.CreateItem("x", Value::Int(5)).ok());
  ASSERT_TRUE(store.WriteItemUncommitted(1, "x", Value::Int(9)).ok());
  EXPECT_EQ(store.ReadItemLatest("x").value().AsInt(), 9);     // dirty
  EXPECT_EQ(store.ReadItemCommitted("x").value().AsInt(), 5);  // committed
}

TEST(StoreTest, SecondWriterConflicts) {
  Store store;
  ASSERT_TRUE(store.CreateItem("x", Value::Int(5)).ok());
  ASSERT_TRUE(store.WriteItemUncommitted(1, "x", Value::Int(9)).ok());
  EXPECT_EQ(store.WriteItemUncommitted(2, "x", Value::Int(7)).code(),
            Code::kConflict);
  // Same transaction may overwrite its own image.
  EXPECT_TRUE(store.WriteItemUncommitted(1, "x", Value::Int(10)).ok());
}

TEST(StoreTest, CommitPromotesAndBumpsTimestamp) {
  Store store;
  ASSERT_TRUE(store.CreateItem("x", Value::Int(5)).ok());
  ASSERT_TRUE(store.WriteItemUncommitted(1, "x", Value::Int(9)).ok());
  const Timestamp ts = store.CommitTxn(1);
  EXPECT_GT(ts, 0u);
  EXPECT_EQ(store.ReadItemCommitted("x").value().AsInt(), 9);
  EXPECT_EQ(store.ItemLastCommitTs("x").value(), ts);
}

TEST(StoreTest, AbortDiscardsImages) {
  Store store;
  ASSERT_TRUE(store.CreateItem("x", Value::Int(5)).ok());
  ASSERT_TRUE(store.WriteItemUncommitted(1, "x", Value::Int(9)).ok());
  store.AbortTxn(1);
  EXPECT_EQ(store.ReadItemLatest("x").value().AsInt(), 5);
}

TEST(StoreTest, SnapshotReadsSeeOldVersions) {
  Store store;
  ASSERT_TRUE(store.CreateItem("x", Value::Int(5)).ok());
  const Timestamp before = store.CurrentTs();
  ASSERT_TRUE(store.WriteItemUncommitted(1, "x", Value::Int(9)).ok());
  store.CommitTxn(1);
  EXPECT_EQ(store.ReadItemAtSnapshot("x", before).value().AsInt(), 5);
  EXPECT_EQ(store.ReadItemAtSnapshot("x", store.CurrentTs()).value().AsInt(),
            9);
}

TEST(StoreTest, RowLifecycle) {
  Store store;
  ASSERT_TRUE(store.CreateTable("T", KvSchema()).ok());
  Result<RowId> row = store.LoadRow(
      "T", {{"k", Value::Int(1)}, {"v", Value::Int(10)}});
  ASSERT_TRUE(row.ok());
  Result<std::optional<Tuple>> image = store.ReadRowLatest("T", row.value());
  ASSERT_TRUE(image.ok());
  ASSERT_TRUE(image.value().has_value());
  EXPECT_EQ(image.value()->at("v").AsInt(), 10);
}

TEST(StoreTest, SchemaValidationOnInsert) {
  Store store;
  ASSERT_TRUE(store.CreateTable("T", KvSchema()).ok());
  // Wrong type.
  EXPECT_FALSE(
      store.LoadRow("T", {{"k", Value::Str("a")}, {"v", Value::Int(0)}}).ok());
  // Missing attribute.
  EXPECT_FALSE(store.LoadRow("T", {{"k", Value::Int(1)}}).ok());
}

TEST(StoreTest, UncommittedInsertInvisibleToCommittedScan) {
  Store store;
  ASSERT_TRUE(store.CreateTable("T", KvSchema()).ok());
  ASSERT_TRUE(store
                  .InsertRowUncommitted(
                      7, "T", {{"k", Value::Int(1)}, {"v", Value::Int(1)}})
                  .ok());
  int latest = 0, committed = 0;
  ASSERT_TRUE(store.Scan("T", Store::kLatest,
                         [&](RowId, const Tuple&) { ++latest; })
                  .ok());
  ASSERT_TRUE(store.Scan("T", Store::kCommitted,
                         [&](RowId, const Tuple&) { ++committed; })
                  .ok());
  EXPECT_EQ(latest, 1);
  EXPECT_EQ(committed, 0);
}

TEST(StoreTest, AbortedInsertGarbageCollected) {
  Store store;
  ASSERT_TRUE(store.CreateTable("T", KvSchema()).ok());
  ASSERT_TRUE(store
                  .InsertRowUncommitted(
                      7, "T", {{"k", Value::Int(1)}, {"v", Value::Int(1)}})
                  .ok());
  store.AbortTxn(7);
  int latest = 0;
  ASSERT_TRUE(store.Scan("T", Store::kLatest,
                         [&](RowId, const Tuple&) { ++latest; })
                  .ok());
  EXPECT_EQ(latest, 0);
}

TEST(StoreTest, DeleteTombstone) {
  Store store;
  ASSERT_TRUE(store.CreateTable("T", KvSchema()).ok());
  Result<RowId> row =
      store.LoadRow("T", {{"k", Value::Int(1)}, {"v", Value::Int(1)}});
  ASSERT_TRUE(row.ok());
  ASSERT_TRUE(store.WriteRowUncommitted(3, "T", row.value(), std::nullopt).ok());
  store.CommitTxn(3);
  int committed = 0;
  ASSERT_TRUE(store.Scan("T", Store::kCommitted,
                         [&](RowId, const Tuple&) { ++committed; })
                  .ok());
  EXPECT_EQ(committed, 0);
  // The old version is still visible at an old snapshot.
  int old_count = 0;
  ASSERT_TRUE(store.Scan("T", 0, [&](RowId, const Tuple&) { ++old_count; }).ok());
  EXPECT_EQ(old_count, 1);
}

TEST(StoreTest, SnapshotCommitFirstCommitterWins) {
  Store store;
  ASSERT_TRUE(store.CreateItem("x", Value::Int(0)).ok());
  const Timestamp start = store.CurrentTs();
  // Another txn commits a write to x after `start`.
  ASSERT_TRUE(store.WriteItemUncommitted(1, "x", Value::Int(1)).ok());
  store.CommitTxn(1);
  SnapshotWriteSet ws;
  ws.items["x"] = Value::Int(2);
  Result<Timestamp> ts = store.SnapshotCommit(2, ws, start);
  EXPECT_EQ(ts.status().code(), Code::kConflict);
  // With a fresh snapshot it succeeds.
  Result<Timestamp> ts2 = store.SnapshotCommit(2, ws, store.CurrentTs());
  EXPECT_TRUE(ts2.ok());
  EXPECT_EQ(store.ReadItemCommitted("x").value().AsInt(), 2);
}

TEST(StoreTest, SnapshotCommitInsertsRows) {
  Store store;
  ASSERT_TRUE(store.CreateTable("T", KvSchema()).ok());
  SnapshotWriteSet ws;
  ws.row_ops.push_back(
      {"T", 0, Tuple{{"k", Value::Int(1)}, {"v", Value::Int(5)}}});
  ASSERT_TRUE(store.SnapshotCommit(9, ws, store.CurrentTs()).ok());
  EXPECT_EQ(store.CommittedTuples("T").size(), 1u);
}

TEST(StoreTest, SnapshotToMapRoundTrip) {
  Store store;
  ASSERT_TRUE(store.CreateItem("x", Value::Int(3)).ok());
  ASSERT_TRUE(store.CreateTable("T", KvSchema()).ok());
  ASSERT_TRUE(
      store.LoadRow("T", {{"k", Value::Int(1)}, {"v", Value::Int(2)}}).ok());
  MapEvalContext ctx = store.SnapshotToMap();
  EXPECT_EQ(ctx.GetVar({VarKind::kDb, "x"}).value().AsInt(), 3);
  EXPECT_EQ(ctx.tables().at("T").size(), 1u);
}


TEST(StoreGcTest, PruneKeepsHorizonVisibleVersion) {
  Store store;
  ASSERT_TRUE(store.CreateItem("x", Value::Int(0)).ok());
  Timestamp mid = 0;
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(store.WriteItemUncommitted(i, "x", Value::Int(i)).ok());
    Timestamp ts = store.CommitTxn(i);
    if (i == 3) mid = ts;
  }
  const size_t dropped = store.PruneVersionsBefore(mid);
  EXPECT_GT(dropped, 0u);
  // The version visible at `mid` and everything newer survive.
  EXPECT_EQ(store.ReadItemAtSnapshot("x", mid).value().AsInt(), 3);
  EXPECT_EQ(store.ReadItemCommitted("x").value().AsInt(), 5);
  // Snapshots older than the horizon are no longer servable.
  EXPECT_FALSE(store.ReadItemAtSnapshot("x", 0).ok());
}

TEST(StoreGcTest, PruneRemovesDeadTombstones) {
  Store store;
  ASSERT_TRUE(store.CreateTable("T", KvSchema()).ok());
  Result<RowId> row =
      store.LoadRow("T", {{"k", Value::Int(1)}, {"v", Value::Int(1)}});
  ASSERT_TRUE(row.ok());
  ASSERT_TRUE(store.WriteRowUncommitted(1, "T", row.value(), std::nullopt).ok());
  store.CommitTxn(1);
  ASSERT_TRUE(store.CommittedTuples("T").empty());
  EXPECT_GT(store.PruneVersionsBefore(store.CurrentTs()), 0u);
  // The row is physically gone; scans and point reads agree.
  EXPECT_EQ(store.ReadRowLatest("T", row.value()).status().code(),
            Code::kNotFound);
}

TEST(StoreGcTest, PruneLeavesUncommittedWorkAlone) {
  Store store;
  ASSERT_TRUE(store.CreateItem("x", Value::Int(1)).ok());
  ASSERT_TRUE(store.WriteItemUncommitted(7, "x", Value::Int(2)).ok());
  store.PruneVersionsBefore(store.CurrentTs());
  EXPECT_EQ(store.ReadItemLatest("x").value().AsInt(), 2);  // dirty image kept
  store.AbortTxn(7);
  EXPECT_EQ(store.ReadItemLatest("x").value().AsInt(), 1);
}

}  // namespace
}  // namespace semcor
