#include <gtest/gtest.h>

#include "sem/rt/oracle.h"
#include "txn/driver.h"
#include "workload/workload.h"

namespace semcor {
namespace {

std::shared_ptr<const TxnProgram> Program(const Workload& w,
                                          const std::string& type,
                                          std::map<std::string, Value> params) {
  for (const TransactionType& t : w.app.types) {
    if (t.name == type) return std::make_shared<TxnProgram>(t.make(params));
  }
  return nullptr;
}

class OracleTest : public ::testing::Test {
 protected:
  OracleTest() : mgr_(&store_, &locks_) {}

  Store store_;
  LockManager locks_;
  TxnManager mgr_;
  CommitLog log_;
};

TEST_F(OracleTest, SerialScheduleIsSemanticCorrect) {
  Workload w = MakeBankingWorkload();
  ASSERT_TRUE(w.setup(&store_).ok());
  MapEvalContext initial = store_.SnapshotToMap();
  StepDriver driver(&mgr_, &log_);
  driver.Add(Program(w, "Deposit_sav",
                     {{"i", Value::Int(1)}, {"d", Value::Int(5)}}),
             IsoLevel::kSerializable);
  driver.Add(Program(w, "Withdraw_sav",
                     {{"i", Value::Int(1)}, {"w", Value::Int(3)}}),
             IsoLevel::kSerializable);
  while (!driver.run(0).Done()) driver.Step(0);
  while (!driver.run(1).Done()) driver.Step(1);
  OracleReport report =
      CheckSemanticCorrectness(initial, store_, log_, w.app.invariant);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(OracleTest, WriteSkewFlagged) {
  Workload w = MakeBankingWorkload();
  ASSERT_TRUE(w.setup(&store_).ok());
  MapEvalContext initial = store_.SnapshotToMap();
  StepDriver driver(&mgr_, &log_);
  driver.Add(Program(w, "Withdraw_sav",
                     {{"i", Value::Int(1)}, {"w", Value::Int(15)}}),
             IsoLevel::kSnapshot);
  driver.Add(Program(w, "Withdraw_ch",
                     {{"i", Value::Int(1)}, {"w", Value::Int(15)}}),
             IsoLevel::kSnapshot);
  driver.RunRoundRobin();
  OracleReport report =
      CheckSemanticCorrectness(initial, store_, log_, w.app.invariant);
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.invariant_holds);       // sum went negative
  EXPECT_FALSE(report.matches_serial_replay); // serial order blocks one
}

TEST_F(OracleTest, LostUpdateFlaggedBySerialReplayOnly) {
  // The lost update keeps the invariant (balance still >= 0) but the state
  // does not match the commit-order serial replay.
  Workload w = MakeBankingWorkload();
  ASSERT_TRUE(w.setup(&store_).ok());
  MapEvalContext initial = store_.SnapshotToMap();
  StepDriver driver(&mgr_, &log_);
  driver.Add(Program(w, "Deposit_sav",
                     {{"i", Value::Int(1)}, {"d", Value::Int(5)}}),
             IsoLevel::kReadCommitted);
  driver.Add(Program(w, "Deposit_sav",
                     {{"i", Value::Int(1)}, {"d", Value::Int(7)}}),
             IsoLevel::kReadCommitted);
  driver.RunSchedule({0, 1});
  driver.RunRoundRobin();
  OracleReport report =
      CheckSemanticCorrectness(initial, store_, log_, w.app.invariant);
  EXPECT_TRUE(report.invariant_holds);
  EXPECT_FALSE(report.matches_serial_replay);
}

TEST_F(OracleTest, AbortedTransactionsExcludedFromReplay) {
  Workload w = MakeBankingWorkload();
  ASSERT_TRUE(w.setup(&store_).ok());
  MapEvalContext initial = store_.SnapshotToMap();
  StepDriver driver(&mgr_, &log_);
  driver.Add(Program(w, "Withdraw_sav",
                     {{"i", Value::Int(1)}, {"w", Value::Int(15)}}),
             IsoLevel::kSnapshot);
  driver.Add(Program(w, "Withdraw_sav",
                     {{"i", Value::Int(1)}, {"w", Value::Int(15)}}),
             IsoLevel::kSnapshot);
  driver.RunRoundRobin();  // FCW aborts one
  ASSERT_EQ(log_.size(), 1u);
  OracleReport report =
      CheckSemanticCorrectness(initial, store_, log_, w.app.invariant);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(OracleTest, RelationalTablesCompared) {
  Workload w = MakeOrdersWorkload(false);
  ASSERT_TRUE(w.setup(&store_).ok());
  MapEvalContext initial = store_.SnapshotToMap();
  StepDriver driver(&mgr_, &log_);
  driver.Add(Program(w, "New_Order", {{"customer", Value::Str("c")},
                                      {"address", Value::Str("addr")},
                                      {"order_info", Value::Int(300)}}),
             IsoLevel::kReadCommitted);
  driver.Add(Program(w, "Delivery", {{"today", Value::Int(2)}}),
             IsoLevel::kRepeatableRead);
  while (!driver.run(0).Done()) driver.Step(0);
  while (!driver.run(1).Done()) driver.Step(1);
  OracleReport report =
      CheckSemanticCorrectness(initial, store_, log_, w.app.invariant);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(store_.CommittedTuples("ORDERS").size(), 6u);
}

TEST_F(OracleTest, SerialReplayDetectsTableDivergence) {
  // Tamper with the final state to prove the oracle notices.
  Workload w = MakeOrdersWorkload(false);
  ASSERT_TRUE(w.setup(&store_).ok());
  MapEvalContext initial = store_.SnapshotToMap();
  StepDriver driver(&mgr_, &log_);
  driver.Add(Program(w, "New_Order", {{"customer", Value::Str("c")},
                                      {"address", Value::Str("addr")},
                                      {"order_info", Value::Int(300)}}),
             IsoLevel::kReadCommitted);
  while (!driver.run(0).Done()) driver.Step(0);
  // Sneak in an extra committed row outside any logged transaction.
  ASSERT_TRUE(store_
                  .LoadRow("ORDERS", Tuple{{"order_info", Value::Int(999)},
                                           {"cust_name", Value::Str("x")},
                                           {"deliv_date", Value::Int(1)},
                                           {"done", Value::Bool(false)}})
                  .ok());
  OracleReport report =
      CheckSemanticCorrectness(initial, store_, log_, w.app.invariant);
  EXPECT_FALSE(report.matches_serial_replay);
}

}  // namespace
}  // namespace semcor
