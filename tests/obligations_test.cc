#include <gtest/gtest.h>

#include "sem/check/obligations.h"
#include "sem/prog/builder.h"
#include "workload/workload.h"

namespace semcor {
namespace {

/// Synthetic conventional application with K types of N statements each
/// (half reads, half writes) — the paper's cost-model shape.
Application SyntheticApp(int k, int n) {
  Application app;
  app.name = "synthetic";
  for (int t = 0; t < k; ++t) {
    TransactionType type;
    type.name = "T" + std::to_string(t);
    const int reads = n / 2;
    const int writes = n - reads;
    type.make = [t, reads, writes](const std::map<std::string, Value>&) {
      ProgramBuilder b("T" + std::to_string(t));
      for (int i = 0; i < reads; ++i) {
        b.Pre(True()).Read("X" + std::to_string(i),
                           "x" + std::to_string(t) + "_" + std::to_string(i));
      }
      for (int i = 0; i < writes; ++i) {
        b.Pre(True()).Write("x" + std::to_string(t) + "_" + std::to_string(i),
                            Lit(int64_t{0}));
      }
      return b.Build({});
    };
    type.analysis_scenarios = {{}};
    app.types.push_back(std::move(type));
  }
  return app;
}

TEST(ObligationsTest, SnapshotIsKSquared) {
  for (int k : {2, 4, 8}) {
    ObligationCounts counts = CountObligations(SyntheticApp(k, 10));
    EXPECT_EQ(counts.per_level.at(IsoLevel::kSnapshot),
              static_cast<long>(k) * k)
        << "K=" << k;
  }
}

TEST(ObligationsTest, SnapshotIndependentOfStatementCount) {
  ObligationCounts small = CountObligations(SyntheticApp(4, 4));
  ObligationCounts large = CountObligations(SyntheticApp(4, 40));
  EXPECT_EQ(small.per_level.at(IsoLevel::kSnapshot),
            large.per_level.at(IsoLevel::kSnapshot));
  // While the naive bound explodes quadratically with N.
  EXPECT_GT(large.naive_owicki_gries, 50 * small.naive_owicki_gries);
}

TEST(ObligationsTest, SerializableIsFree) {
  ObligationCounts counts = CountObligations(SyntheticApp(5, 10));
  EXPECT_EQ(counts.per_level.at(IsoLevel::kSerializable), 0);
}

TEST(ObligationsTest, LevelsOrderedByCost) {
  ObligationCounts counts = CountObligations(SyntheticApp(6, 12));
  const long ru = counts.per_level.at(IsoLevel::kReadUncommitted);
  const long rc = counts.per_level.at(IsoLevel::kReadCommitted);
  const long snap = counts.per_level.at(IsoLevel::kSnapshot);
  EXPECT_GT(ru, rc);
  EXPECT_GT(rc, snap);
  EXPECT_LT(ru, counts.naive_owicki_gries);
}

TEST(ObligationsTest, FcwExemptsProtectedReads) {
  // A type whose reads are all followed by same-item writes has only the
  // Q_i obligation left at RC-FCW.
  Application app;
  TransactionType type;
  type.name = "RW";
  type.make = [](const std::map<std::string, Value>&) {
    ProgramBuilder b("RW");
    b.Pre(True()).Read("X", "x");
    b.Pre(True()).Write("x", Add(Local("X"), Lit(int64_t{1})));
    return b.Build({});
  };
  type.analysis_scenarios = {{}};
  app.types.push_back(type);
  ObligationCounts counts = CountObligations(app);
  EXPECT_EQ(counts.per_level.at(IsoLevel::kReadCommitted), 2);  // read + Q_i
  EXPECT_EQ(counts.per_level.at(IsoLevel::kReadCommittedFcw), 1);  // Q_i only
}

TEST(ObligationsTest, ConventionalTypesFreeAtRepeatableRead) {
  ObligationCounts counts = CountObligations(SyntheticApp(4, 8));
  EXPECT_EQ(counts.per_level.at(IsoLevel::kRepeatableRead), 0);
}

TEST(ObligationsTest, RelationalTypesPayAtRepeatableRead) {
  Workload w = MakeOrdersWorkload(false);
  ObligationCounts counts = CountObligations(w.app);
  EXPECT_GT(counts.per_level.at(IsoLevel::kRepeatableRead), 0);
}

TEST(ObligationsTest, RenderIncludesAllLevels) {
  std::string text = RenderObligationCounts(CountObligations(SyntheticApp(3, 6)));
  for (const char* needle :
       {"READ-UNCOMMITTED", "READ-COMMITTED", "REPEATABLE-READ",
        "SERIALIZABLE", "SNAPSHOT", "naive"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

/// Property sweep: RU counts grow quadratically in K (writes x types).
class ObligationGrowthTest : public ::testing::TestWithParam<int> {};

TEST_P(ObligationGrowthTest, RuQuadraticInK) {
  const int k = GetParam();
  ObligationCounts counts = CountObligations(SyntheticApp(k, 8));
  // 8 statements: 4 reads + 4 writes, doubled for undo = 8k total writes.
  // Per type: (1 + 4 + 1) targets x 8k sources.
  EXPECT_EQ(counts.per_level.at(IsoLevel::kReadUncommitted),
            static_cast<long>(k) * 6 * 8 * k);
}

INSTANTIATE_TEST_SUITE_P(Ks, ObligationGrowthTest,
                         ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace semcor
