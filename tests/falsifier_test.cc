#include <gtest/gtest.h>

#include "sem/logic/falsifier.h"

namespace semcor {
namespace {

SchemaShapes OrdersShape() {
  SchemaShapes shapes;
  shapes["ORDERS"] = TableShape{{{"deliv_date", Value::Type::kInt},
                                 {"done", Value::Type::kBool},
                                 {"cust", Value::Type::kString}}};
  return shapes;
}

TEST(FalsifierTest, FindsScalarModel) {
  Expr f = And(Gt(DbVar("x"), Lit(int64_t{2})), Lt(DbVar("x"), Lit(int64_t{5})));
  auto model = FindModel(f, {}, FalsifierOptions());
  ASSERT_TRUE(model.has_value());
  Result<bool> check = EvalBool(f, *model);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check.value());
}

TEST(FalsifierTest, RespectsStringComparisons) {
  Expr f = Eq(Local("c"), Lit(std::string("a")));
  auto model = FindModel(f, {}, FalsifierOptions());
  ASSERT_TRUE(model.has_value());
  EXPECT_EQ(model->GetVar({VarKind::kLocal, "c"}).value().AsString(), "a");
}

TEST(FalsifierTest, GeneratesTablesFromShapes) {
  Expr f = Gt(Count("ORDERS", Eq(Attr("done"), Lit(false))), Lit(int64_t{0}));
  auto model = FindModel(f, OrdersShape(), FalsifierOptions());
  ASSERT_TRUE(model.has_value());
  Result<bool> check = EvalBool(f, *model);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check.value());
}

TEST(FalsifierTest, CombinedTableAndScalarConstraint) {
  // A model where some undone order is due today.
  Expr f = And(
      Ge(Local("today"), Lit(int64_t{1})),
      Exists("ORDERS", And(Eq(Attr("deliv_date"), Local("today")),
                           Eq(Attr("done"), Lit(false)))));
  FalsifierOptions options;
  options.attempts = 20000;
  auto model = FindModel(f, OrdersShape(), options);
  ASSERT_TRUE(model.has_value());
  Result<bool> check = EvalBool(f, *model);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check.value());
}

TEST(FalsifierTest, UnsatisfiableFindsNothing) {
  Expr f = And(Gt(DbVar("x"), Lit(int64_t{2})), Lt(DbVar("x"), Lit(int64_t{1})));
  FalsifierOptions options;
  options.attempts = 500;
  EXPECT_FALSE(FindModel(f, {}, options).has_value());
}

TEST(FalsifierTest, BooleanLocalsAreTyped) {
  // `found` appears as a bare boolean atom.
  Expr f = And(Implies(Local("found"), Gt(DbVar("x"), Lit(int64_t{0}))),
               Local("found"));
  FalsifierOptions options;
  options.var_types[{VarKind::kLocal, "found"}] = Value::Type::kBool;
  auto model = FindModel(f, {}, options);
  ASSERT_TRUE(model.has_value());
  EXPECT_TRUE(model->GetVar({VarKind::kLocal, "found"}).value().AsBool());
}

TEST(FalsifierTest, InferVarTypesFromComparisons) {
  Expr f = And(Eq(Local("s"), Lit(std::string("b"))),
               Eq(Local("flag"), Lit(true)));
  auto types = InferVarTypes(f);
  EXPECT_EQ(types.at({VarKind::kLocal, "s"}), Value::Type::kString);
  EXPECT_EQ(types.at({VarKind::kLocal, "flag"}), Value::Type::kBool);
}

TEST(FalsifierTest, DeterministicForFixedSeed) {
  Expr f = Gt(DbVar("x"), Lit(int64_t{0}));
  FalsifierOptions options;
  auto m1 = FindModel(f, {}, options);
  auto m2 = FindModel(f, {}, options);
  ASSERT_TRUE(m1.has_value());
  ASSERT_TRUE(m2.has_value());
  EXPECT_EQ(m1->GetVar({VarKind::kDb, "x"}).value(),
            m2->GetVar({VarKind::kDb, "x"}).value());
}

}  // namespace
}  // namespace semcor
