#include <gtest/gtest.h>

#include "sem/prog/builder.h"
#include "sem/prog/concrete_exec.h"
#include "sem/expr/simplify.h"
#include "sem/prog/program.h"

namespace semcor {
namespace {

TxnProgram SimpleTransfer() {
  // Read x, write y := X + 1, conditionally write z.
  ProgramBuilder b("Transfer");
  b.IPart(Ge(DbVar("x"), Lit(int64_t{0})));
  b.Logical("X0", "x");
  b.Pre(True()).Read("X", "x");
  b.Pre(Eq(Local("X"), Logical("X0"))).Write("y", Add(Local("X"), Lit(int64_t{1})));
  b.Pre(True()).If(Gt(Local("X"), Lit(int64_t{5})),
                   [](ProgramBuilder& t) {
                     t.Pre(Gt(Local("X"), Lit(int64_t{5})))
                         .Write("z", Local("X"));
                   });
  b.Result(Eq(DbVar("y"), Add(Logical("X0"), Lit(int64_t{1}))));
  return b.Build({});
}

TEST(BuilderTest, BuildsAnnotatedProgram) {
  TxnProgram p = SimpleTransfer();
  EXPECT_EQ(p.type_name, "Transfer");
  ASSERT_EQ(p.body.size(), 3u);
  EXPECT_EQ(p.body[0]->kind, StmtKind::kRead);
  EXPECT_EQ(p.body[1]->kind, StmtKind::kWrite);
  EXPECT_EQ(p.body[2]->kind, StmtKind::kIf);
  EXPECT_EQ(p.body[2]->then_body.size(), 1u);
  EXPECT_EQ(p.logical_bindings.at("X0"), "x");
}

TEST(BuilderTest, ParamsInLabel) {
  ProgramBuilder b("T");
  TxnProgram p = b.Build({{"k", Value::Int(7)}});
  EXPECT_EQ(p.instance_label, "T(k=7)");
}

TEST(BuilderTest, DefaultAnnotationIsTrue) {
  ProgramBuilder b("T");
  b.Read("X", "x");
  TxnProgram p = b.Build({});
  EXPECT_TRUE(IsTrueLiteral(p.body[0]->pre));
}

TEST(ProgramTest, CountAtomicStmts) {
  TxnProgram p = SimpleTransfer();
  EXPECT_EQ(CountAtomicStmts(p.body), 3);  // read, write, nested write
}

TEST(ProgramTest, CollectDbWrites) {
  TxnProgram p = SimpleTransfer();
  std::vector<StmtPtr> writes = CollectDbWrites(p);
  ASSERT_EQ(writes.size(), 2u);
  EXPECT_EQ(writes[0]->item, "y");
  EXPECT_EQ(writes[1]->item, "z");
}

TEST(ProgramTest, ReadPostconditions) {
  TxnProgram p = SimpleTransfer();
  std::vector<ReadWithPost> reads = CollectReadPostconditions(p);
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(reads[0].stmt->item, "x");
  // Post of the read is the annotation of the following write.
  EXPECT_TRUE(ExprEquals(reads[0].post, p.body[1]->pre));
  EXPECT_FALSE(reads[0].followed_by_write_same_item);
}

TEST(ProgramTest, FollowedByWriteSameItemUnconditional) {
  ProgramBuilder b("T");
  b.Read("X", "x");
  b.Write("x", Add(Local("X"), Lit(int64_t{1})));
  TxnProgram p = b.Build({});
  std::vector<ReadWithPost> reads = CollectReadPostconditions(p);
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_TRUE(reads[0].followed_by_write_same_item);
}

TEST(ProgramTest, ConditionalWriteDoesNotProtectRead) {
  ProgramBuilder b("T");
  b.Read("X", "x");
  b.If(Gt(Local("X"), Lit(int64_t{0})), [](ProgramBuilder& t) {
    t.Write("x", Lit(int64_t{0}));
  });
  TxnProgram p = b.Build({});
  std::vector<ReadWithPost> reads = CollectReadPostconditions(p);
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_FALSE(reads[0].followed_by_write_same_item);
}

TEST(ProgramTest, WriteOnBothBranchesProtectsRead) {
  ProgramBuilder b("T");
  b.Read("X", "x");
  b.If(Gt(Local("X"), Lit(int64_t{0})),
       [](ProgramBuilder& t) { t.Write("x", Lit(int64_t{0})); },
       [](ProgramBuilder& e) { e.Write("x", Lit(int64_t{1})); });
  TxnProgram p = b.Build({});
  std::vector<ReadWithPost> reads = CollectReadPostconditions(p);
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_TRUE(reads[0].followed_by_write_same_item);
}

TEST(ProgramTest, LastStatementPostIsProgramPostcondition) {
  ProgramBuilder b("T");
  b.Read("X", "x");
  b.Result(Gt(Local("X"), Lit(int64_t{0})));
  TxnProgram p = b.Build({});
  std::vector<ReadWithPost> reads = CollectReadPostconditions(p);
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_TRUE(ExprEquals(reads[0].post, p.Postcondition()));
}

TEST(ProgramTest, RenameLocals) {
  TxnProgram p = SimpleTransfer();
  TxnProgram renamed = RenameLocals(p, "o::");
  EXPECT_EQ(renamed.body[0]->local, "o::X");
  FreeVars fv = CollectFreeVars(renamed.body[1]->expr);
  EXPECT_EQ(fv.locals.count("o::X"), 1u);
  EXPECT_EQ(renamed.logical_bindings.count("o::X0"), 1u);
  // Db items are untouched.
  EXPECT_EQ(renamed.body[0]->item, "x");
}

TEST(ProgramTest, WriteFootprint) {
  ProgramBuilder b("T");
  b.Write("x", Lit(int64_t{1}));
  b.Insert("T1", {{"a", Lit(int64_t{1})}});
  b.Update("T2", True(), {{"a", Lit(int64_t{2})}});
  TxnProgram p = b.Build({});
  WriteFootprint fp = CollectWriteFootprint(p);
  EXPECT_EQ(fp.items.count("x"), 1u);
  EXPECT_EQ(fp.tables.count("T1"), 1u);
  EXPECT_EQ(fp.tables.count("T2"), 1u);

  ProgramBuilder b2("U");
  b2.Write("y", Lit(int64_t{0}));
  WriteFootprint fp2 = CollectWriteFootprint(b2.Build({}));
  EXPECT_FALSE(fp.Intersects(fp2));
  ProgramBuilder b3("V");
  b3.Write("x", Lit(int64_t{0}));
  EXPECT_TRUE(fp.Intersects(CollectWriteFootprint(b3.Build({}))));
}

// ---- concrete execution ----

TEST(ConcreteExecTest, ScalarProgram) {
  TxnProgram p = SimpleTransfer();
  MapEvalContext ctx;
  ctx.SetDb("x", Value::Int(7));
  ctx.SetDb("y", Value::Int(0));
  ctx.SetDb("z", Value::Int(0));
  ASSERT_TRUE(ExecuteProgram(p, &ctx).ok());
  EXPECT_EQ(ctx.GetVar({VarKind::kDb, "y"}).value().AsInt(), 8);
  EXPECT_EQ(ctx.GetVar({VarKind::kDb, "z"}).value().AsInt(), 7);
  EXPECT_EQ(ctx.GetVar({VarKind::kLogical, "X0"}).value().AsInt(), 7);
}

TEST(ConcreteExecTest, ElseBranch) {
  TxnProgram p = SimpleTransfer();
  MapEvalContext ctx;
  ctx.SetDb("x", Value::Int(2));
  ctx.SetDb("z", Value::Int(-1));
  ASSERT_TRUE(ExecuteProgram(p, &ctx).ok());
  EXPECT_EQ(ctx.GetVar({VarKind::kDb, "z"}).value().AsInt(), -1);  // untouched
}

TEST(ConcreteExecTest, UnboundItemDefaultsToZero) {
  ProgramBuilder b("T");
  b.Read("X", "fresh");
  b.Write("out", Local("X"));
  TxnProgram p = b.Build({});
  MapEvalContext ctx;
  ASSERT_TRUE(ExecuteProgram(p, &ctx).ok());
  EXPECT_EQ(ctx.GetVar({VarKind::kDb, "out"}).value().AsInt(), 0);
}

TEST(ConcreteExecTest, AbortRestoresState) {
  ProgramBuilder b("T");
  b.Write("x", Lit(int64_t{99}));
  b.Abort();
  b.Write("x", Lit(int64_t{77}));  // unreachable
  TxnProgram p = b.Build({});
  MapEvalContext ctx;
  ctx.SetDb("x", Value::Int(1));
  ASSERT_TRUE(ExecuteProgram(p, &ctx).ok());
  EXPECT_EQ(ctx.GetVar({VarKind::kDb, "x"}).value().AsInt(), 1);
}

TEST(ConcreteExecTest, RelationalStatements) {
  ProgramBuilder b("T");
  b.Insert("T1", {{"k", Lit(int64_t{1})}, {"v", Lit(int64_t{10})}});
  b.Insert("T1", {{"k", Lit(int64_t{2})}, {"v", Lit(int64_t{20})}});
  b.Update("T1", Eq(Attr("k"), Lit(int64_t{1})),
           {{"v", Add(Attr("v"), Lit(int64_t{5}))}});
  b.Delete("T1", Eq(Attr("k"), Lit(int64_t{2})));
  b.SelectAgg("total", SumOf("T1", "v", True()));
  TxnProgram p = b.Build({});
  MapEvalContext ctx;
  ASSERT_TRUE(ExecuteProgram(p, &ctx).ok());
  EXPECT_EQ(ctx.GetVar({VarKind::kLocal, "total"}).value().AsInt(), 15);
}

TEST(ConcreteExecTest, SelectRowsSetsCountLocal) {
  ProgramBuilder b("T");
  b.Insert("T1", {{"k", Lit(int64_t{1})}});
  b.Insert("T1", {{"k", Lit(int64_t{1})}});
  b.SelectRows("buf", "T1", Eq(Attr("k"), Lit(int64_t{1})));
  TxnProgram p = b.Build({});
  MapEvalContext ctx;
  std::map<std::string, std::vector<Tuple>> buffers;
  ASSERT_TRUE(ExecuteStmts(p.body, &ctx, &buffers).ok());
  EXPECT_EQ(ctx.GetVar({VarKind::kLocal, "buf_count"}).value().AsInt(), 2);
  EXPECT_EQ(buffers.at("buf").size(), 2u);
}

TEST(ConcreteExecTest, WhileLoopWithFuel) {
  ProgramBuilder b("T");
  b.Let("i", Lit(int64_t{0}));
  b.While(Lt(Local("i"), Lit(int64_t{5})), [](ProgramBuilder& body) {
    body.Let("i", Add(Local("i"), Lit(int64_t{1})));
  });
  TxnProgram p = b.Build({});
  MapEvalContext ctx;
  ASSERT_TRUE(ExecuteProgram(p, &ctx).ok());
  EXPECT_EQ(ctx.GetVar({VarKind::kLocal, "i"}).value().AsInt(), 5);
}

TEST(ConcreteExecTest, InfiniteLoopExhaustsFuel) {
  ProgramBuilder b("T");
  b.Let("i", Lit(int64_t{0}));
  b.While(Lt(Local("i"), Lit(int64_t{5})), [](ProgramBuilder&) {});
  TxnProgram p = b.Build({});
  MapEvalContext ctx;
  ConcreteExecOptions options;
  options.loop_fuel = 10;
  EXPECT_FALSE(ExecuteProgram(p, &ctx, options).ok());
}

}  // namespace
}  // namespace semcor
