#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "lock/lock_manager.h"

namespace semcor {
namespace {

TEST(LockTest, SharedLocksCompatible) {
  LockManager lm;
  EXPECT_TRUE(lm.AcquireItem(1, "x", LockMode::kShared, false).ok());
  EXPECT_TRUE(lm.AcquireItem(2, "x", LockMode::kShared, false).ok());
  EXPECT_EQ(lm.HeldCount(1), 1u);
  EXPECT_EQ(lm.HeldCount(2), 1u);
}

TEST(LockTest, ExclusiveConflicts) {
  LockManager lm;
  ASSERT_TRUE(lm.AcquireItem(1, "x", LockMode::kExclusive, false).ok());
  EXPECT_EQ(lm.AcquireItem(2, "x", LockMode::kShared, false).code(),
            Code::kWouldBlock);
  EXPECT_EQ(lm.AcquireItem(2, "x", LockMode::kExclusive, false).code(),
            Code::kWouldBlock);
}

TEST(LockTest, ReacquireAndUpgrade) {
  LockManager lm;
  ASSERT_TRUE(lm.AcquireItem(1, "x", LockMode::kShared, false).ok());
  // Sole holder upgrades.
  EXPECT_TRUE(lm.AcquireItem(1, "x", LockMode::kExclusive, false).ok());
  EXPECT_EQ(lm.AcquireItem(2, "x", LockMode::kShared, false).code(),
            Code::kWouldBlock);
  // Upgrade sticks: re-acquiring shared must not downgrade.
  EXPECT_TRUE(lm.AcquireItem(1, "x", LockMode::kShared, false).ok());
  EXPECT_EQ(lm.AcquireItem(2, "x", LockMode::kShared, false).code(),
            Code::kWouldBlock);
}

TEST(LockTest, UpgradeBlockedByOtherReader) {
  LockManager lm;
  ASSERT_TRUE(lm.AcquireItem(1, "x", LockMode::kShared, false).ok());
  ASSERT_TRUE(lm.AcquireItem(2, "x", LockMode::kShared, false).ok());
  EXPECT_EQ(lm.AcquireItem(1, "x", LockMode::kExclusive, false).code(),
            Code::kWouldBlock);
}

TEST(LockTest, ReleaseWakesConflicts) {
  LockManager lm;
  ASSERT_TRUE(lm.AcquireItem(1, "x", LockMode::kExclusive, false).ok());
  lm.ReleaseItem(1, "x");
  EXPECT_TRUE(lm.AcquireItem(2, "x", LockMode::kExclusive, false).ok());
}

TEST(LockTest, ReleaseAllCoversRowsAndItems) {
  LockManager lm;
  ASSERT_TRUE(lm.AcquireItem(1, "x", LockMode::kExclusive, false).ok());
  ASSERT_TRUE(lm.AcquireRow(1, "T", 5, LockMode::kExclusive, false).ok());
  EXPECT_EQ(lm.HeldCount(1), 2u);
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.HeldCount(1), 0u);
  EXPECT_TRUE(lm.AcquireRow(2, "T", 5, LockMode::kExclusive, false).ok());
}

TEST(LockTest, RowLocksIndependentPerRow) {
  LockManager lm;
  ASSERT_TRUE(lm.AcquireRow(1, "T", 1, LockMode::kExclusive, false).ok());
  EXPECT_TRUE(lm.AcquireRow(2, "T", 2, LockMode::kExclusive, false).ok());
}

TEST(LockTest, BlockingAcquireWaitsForRelease) {
  LockManager lm;
  ASSERT_TRUE(lm.AcquireItem(1, "x", LockMode::kExclusive, false).ok());
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    Status s = lm.AcquireItem(2, "x", LockMode::kExclusive, true);
    acquired = s.ok();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(acquired.load());
  lm.ReleaseAll(1);
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST(LockTest, DeadlockDetectedForRequester) {
  LockManager lm;
  ASSERT_TRUE(lm.AcquireItem(1, "x", LockMode::kExclusive, false).ok());
  ASSERT_TRUE(lm.AcquireItem(2, "y", LockMode::kExclusive, false).ok());
  // T1 waits for y (held by T2) in a thread; T2 then requests x -> cycle.
  std::thread t1([&] {
    Status s = lm.AcquireItem(1, "y", LockMode::kExclusive, true);
    // T1 is eventually granted y after T2 self-aborts.
    EXPECT_TRUE(s.ok() || s.code() == Code::kDeadlock);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Status s2 = lm.AcquireItem(2, "x", LockMode::kExclusive, true);
  EXPECT_EQ(s2.code(), Code::kDeadlock);
  lm.ReleaseAll(2);  // victim aborts
  t1.join();
  lm.ReleaseAll(1);
  EXPECT_GE(lm.stats().deadlocks, 1);
}

// ---- predicate locks ----

TEST(PredicateLockTest, OverlappingPredicatesConflict) {
  LockManager lm;
  Expr p1 = Gt(Attr("d"), Lit(int64_t{3}));
  Expr p2 = Eq(Attr("d"), Lit(int64_t{5}));
  ASSERT_TRUE(lm.AcquirePredicate(1, "T", p1, LockMode::kExclusive, false).ok());
  EXPECT_EQ(lm.AcquirePredicate(2, "T", p2, LockMode::kShared, false).code(),
            Code::kWouldBlock);
}

TEST(PredicateLockTest, DisjointPredicatesCompatible) {
  LockManager lm;
  Expr p1 = Eq(Attr("d"), Lit(int64_t{3}));
  Expr p2 = Eq(Attr("d"), Lit(int64_t{5}));
  ASSERT_TRUE(lm.AcquirePredicate(1, "T", p1, LockMode::kExclusive, false).ok());
  EXPECT_TRUE(lm.AcquirePredicate(2, "T", p2, LockMode::kExclusive, false).ok());
}

TEST(PredicateLockTest, SharedPredicatesCompatible) {
  LockManager lm;
  Expr p = Gt(Attr("d"), Lit(int64_t{0}));
  ASSERT_TRUE(lm.AcquirePredicate(1, "T", p, LockMode::kShared, false).ok());
  EXPECT_TRUE(lm.AcquirePredicate(2, "T", p, LockMode::kShared, false).ok());
}

TEST(PredicateLockTest, GateBlocksCoveredInsert) {
  LockManager lm;
  // T1 holds an S predicate lock on d == 5 (a SERIALIZABLE select).
  ASSERT_TRUE(lm.AcquirePredicate(1, "T", Eq(Attr("d"), Lit(int64_t{5})),
                                  LockMode::kShared, false)
                  .ok());
  Tuple covered = {{"d", Value::Int(5)}};
  Tuple outside = {{"d", Value::Int(6)}};
  EXPECT_EQ(lm.PredicateGate(2, "T", {&covered}, LockMode::kExclusive, false)
                .code(),
            Code::kWouldBlock);
  EXPECT_TRUE(
      lm.PredicateGate(2, "T", {&outside}, LockMode::kExclusive, false).ok());
  // The holder itself is never blocked by its own predicate.
  EXPECT_TRUE(
      lm.PredicateGate(1, "T", {&covered}, LockMode::kExclusive, false).ok());
}

TEST(PredicateLockTest, GateIgnoresOtherTables) {
  LockManager lm;
  ASSERT_TRUE(lm.AcquirePredicate(1, "T", True(), LockMode::kExclusive, false)
                  .ok());
  Tuple t = {{"d", Value::Int(5)}};
  EXPECT_TRUE(lm.PredicateGate(2, "U", {&t}, LockMode::kExclusive, false).ok());
}

TEST(PredicateLockTest, ReleaseAllFreesPredicates) {
  LockManager lm;
  ASSERT_TRUE(lm.AcquirePredicate(1, "T", True(), LockMode::kExclusive, false)
                  .ok());
  lm.ReleaseAll(1);
  EXPECT_TRUE(lm.AcquirePredicate(2, "T", True(), LockMode::kExclusive, false)
                  .ok());
}

}  // namespace
}  // namespace semcor
