// Ladder monotonicity: if a transaction type is semantically correct at a
// level, it must be correct at every stronger level (the §5 procedure's
// "return the first correct level" is only meaningful under this property).
// This is not true by construction — each level has its own theorem — so we
// verify it across every paper workload.

#include <gtest/gtest.h>

#include "sem/check/theorems.h"
#include "workload/workload.h"

namespace semcor {
namespace {

class MonotonicityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(MonotonicityTest, CorrectnessIsUpwardClosed) {
  const std::string name = GetParam();
  Workload w = name == "banking"         ? MakeBankingWorkload()
               : name == "payroll"       ? MakePayrollWorkload()
               : name == "mailing"       ? MakeMailingWorkload()
               : name == "orders"        ? MakeOrdersWorkload(false)
               : name == "orders_unique" ? MakeOrdersWorkload(true)
                                         : MakeTpccWorkload();
  const std::vector<IsoLevel> ladder = {
      IsoLevel::kReadUncommitted, IsoLevel::kReadCommitted,
      IsoLevel::kReadCommittedFcw, IsoLevel::kRepeatableRead,
      IsoLevel::kSerializable};
  TheoremEngine engine(w.app, CheckOptions());
  for (const TransactionType& type : w.app.types) {
    bool seen_correct = false;
    for (IsoLevel level : ladder) {
      const bool correct = engine.CheckAtLevel(type.name, level).correct;
      if (seen_correct) {
        EXPECT_TRUE(correct)
            << type.name << " correct below but not at "
            << IsoLevelName(level);
      }
      seen_correct = seen_correct || correct;
    }
    EXPECT_TRUE(seen_correct) << type.name << " never correct";
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, MonotonicityTest,
                         ::testing::Values("banking", "payroll", "mailing",
                                           "orders", "orders_unique", "tpcc"));

}  // namespace
}  // namespace semcor
