// Tests for the open-loop load generator (ISSUE 10 tentpole): deterministic
// rate scheduling under a fake clock, HDR-style histogram percentiles, and
// coordinated-omission accounting — queueing delay behind a slow operation
// must surface in recorded latency, and an overloaded run must drop (and
// count) arrivals it can no longer honour.

#include <gtest/gtest.h>

#include "load/clock.h"
#include "load/histogram.h"
#include "load/load.h"
#include "load/rate.h"

namespace semcor::load {
namespace {

TEST(RateSchedulerTest, ArrivalsAreDeterministicAndEvenlySpaced) {
  RateScheduler sched(/*start_us=*/1000, /*ops_per_sec=*/1000.0);
  // 1000 ops/s -> one arrival per millisecond, starting at the start time.
  EXPECT_EQ(sched.ArrivalUs(0), 1000);
  EXPECT_EQ(sched.ArrivalUs(1), 2000);
  EXPECT_EQ(sched.ArrivalUs(10), 11000);
  // Same parameters, same schedule — arrival times are a pure function.
  RateScheduler again(1000, 1000.0);
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(sched.ArrivalUs(i), again.ArrivalUs(i)) << i;
  }
  // Monotone at fractional intervals too (300/s -> 3333.3µs spacing).
  RateScheduler frac(0, 300.0);
  for (uint64_t i = 1; i < 300; ++i) {
    EXPECT_GT(frac.ArrivalUs(i), frac.ArrivalUs(i - 1)) << i;
  }
  // Over a full second the fractional schedule lands within one interval
  // of the target rate.
  EXPECT_NEAR(static_cast<double>(frac.ArrivalUs(300)), 1e6,
              frac.interval_us() + 1);
}

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram h;
  for (int64_t v = 0; v < 64; ++v) h.Record(v);
  EXPECT_EQ(h.Count(), 64u);
  EXPECT_EQ(h.Max(), 63);
  // Below 64 the buckets are exact, so percentiles are exact order stats.
  EXPECT_EQ(h.Percentile(50), 31);
  EXPECT_EQ(h.Percentile(100), 63);
}

TEST(HistogramTest, PercentilesWithinRelativeErrorBound) {
  Histogram h;
  for (int64_t v = 1; v <= 100000; ++v) h.Record(v);
  EXPECT_EQ(h.Count(), 100000u);
  // Upper-bound reporting with ~3% bucket width: p must sit in [exact,
  // exact * 1.04).
  for (double p : {50.0, 90.0, 95.0, 99.0, 99.9}) {
    const double exact = p / 100.0 * 100000.0;
    const int64_t got = h.Percentile(p);
    EXPECT_GE(static_cast<double>(got), exact - 1) << p;
    EXPECT_LE(static_cast<double>(got), exact * 1.04 + 1) << p;
  }
  EXPECT_GE(h.Percentile(100), 100000);
}

TEST(HistogramTest, MergeAndEmptyBehaviour) {
  Histogram empty;
  EXPECT_EQ(empty.Percentile(99), 0);
  EXPECT_EQ(empty.Count(), 0u);
  EXPECT_EQ(empty.Mean(), 0.0);

  Histogram a;
  Histogram b;
  for (int i = 0; i < 500; ++i) a.Record(100);
  for (int i = 0; i < 500; ++i) b.Record(10000);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 1000u);
  EXPECT_EQ(a.Max(), 10000);
  // Half the mass at 100, half at 10000: p50 is the low mode, p99 the high.
  EXPECT_LE(a.Percentile(50), 104);
  EXPECT_GE(a.Percentile(99), 10000 * 97 / 100);
  EXPECT_NEAR(a.Mean(), 5050.0, 1.0);
}

TEST(LoadGeneratorTest, FastServiceRecordsOnlyMeasureWindow) {
  FakeClock clock;
  LoadOptions options;
  options.target_rate = 1000.0;   // 1ms spacing
  options.workers = 1;
  options.connections = 4;
  options.warmup_us = 100000;     // 100 arrivals warm up
  options.measure_us = 400000;    // 400 arrivals measured
  long calls = 0;
  LoadGenerator gen(options, &clock, [&](int conn, uint64_t) {
    ++calls;
    EXPECT_GE(conn, 0);
    EXPECT_LT(conn, 4);
    clock.AdvanceUs(10);  // 10µs service, far below the 1ms interval
    OpOutcome out;
    out.type = "T";
    out.committed = true;
    return out;
  });
  LoadReport report = gen.Run();
  EXPECT_EQ(report.scheduled, 500);
  EXPECT_EQ(calls, 500);
  EXPECT_EQ(report.measured, 400);  // warmup arrivals are executed, unrecorded
  EXPECT_EQ(report.committed, 400);
  EXPECT_EQ(report.dropped, 0);
  // An idle open loop has service-time latency only.
  EXPECT_LE(report.latency.Percentile(99), 16);
  EXPECT_EQ(report.per_type.at("T").completed, 400);
}

TEST(LoadGeneratorTest, SlowServiceSurfacesQueueingDelay) {
  // Coordinated omission: service takes 10ms against a 1ms arrival
  // interval, so operation i starts ~9ms*i behind its scheduled arrival. A
  // closed-loop harness would report 10ms forever; the open loop must show
  // latencies growing with the backlog.
  FakeClock clock;
  LoadOptions options;
  options.target_rate = 1000.0;
  options.workers = 1;
  options.connections = 1;
  options.warmup_us = 0;
  options.measure_us = 100000;    // 100 arrivals
  options.max_drain_us = 10000000;
  LoadGenerator gen(options, &clock, [&](int, uint64_t) {
    clock.AdvanceUs(10000);
    OpOutcome out;
    out.type = "slow";
    out.committed = true;
    return out;
  });
  LoadReport report = gen.Run();
  EXPECT_EQ(report.measured, 100);
  // Last arrival was scheduled at 99ms and completes at ~1000ms: the tail
  // latency is dominated by queueing, an order of magnitude beyond the
  // 10ms service time.
  EXPECT_GE(report.latency.Percentile(99), 800000);
  EXPECT_GE(report.latency.Percentile(50), 300000);
}

TEST(LoadGeneratorTest, OverloadPastDrainHorizonDropsArrivals) {
  FakeClock clock;
  LoadOptions options;
  options.target_rate = 1000.0;
  options.workers = 1;
  options.connections = 1;
  options.warmup_us = 0;
  options.measure_us = 100000;    // 100 arrivals, window closes at 100ms
  options.max_drain_us = 100000;  // backlog abandoned past 200ms
  long executed = 0;
  LoadGenerator gen(options, &clock, [&](int, uint64_t) {
    ++executed;
    clock.AdvanceUs(10000);  // 10x oversubscribed
    OpOutcome out;
    out.type = "slow";
    out.committed = true;
    return out;
  });
  LoadReport report = gen.Run();
  EXPECT_EQ(report.scheduled, 100);
  // ~20 operations fit before the drain horizon (200ms / 10ms); the rest
  // must be counted as dropped, not silently discarded or executed late.
  EXPECT_EQ(report.dropped, 100 - executed);
  EXPECT_GT(report.dropped, 0);
  EXPECT_EQ(report.measured, executed);
}

TEST(LoadGeneratorTest, BusyAndAbortOutcomesAreSplitPerType) {
  FakeClock clock;
  LoadOptions options;
  options.target_rate = 1000.0;
  options.workers = 1;
  options.connections = 2;
  options.warmup_us = 0;
  options.measure_us = 90000;  // 90 arrivals
  LoadGenerator gen(options, &clock, [&](int, uint64_t i) {
    clock.AdvanceUs(5);
    OpOutcome out;
    out.type = i % 3 == 0 ? "TNewOrder" : "TPayment";
    if (i % 9 == 1) {
      out.busy = true;
      out.busy_retries = 2;
    } else {
      out.committed = i % 5 != 0;
    }
    return out;
  });
  LoadReport report = gen.Run();
  EXPECT_EQ(report.measured, 90);
  EXPECT_EQ(report.measured,
            report.committed + report.aborted + report.busy);
  EXPECT_EQ(report.busy, 10);  // i % 9 == 1 over 0..89
  ASSERT_TRUE(report.per_type.count("TNewOrder"));
  ASSERT_TRUE(report.per_type.count("TPayment"));
  const TypeStats& no = report.per_type.at("TNewOrder");
  const TypeStats& pay = report.per_type.at("TPayment");
  EXPECT_EQ(no.completed, 30);
  EXPECT_EQ(pay.completed, 60);
  EXPECT_EQ(no.completed + pay.completed, report.measured);
  EXPECT_GT(pay.busy, 0);
  EXPECT_EQ(pay.busy_retries, pay.busy * 2);
  EXPECT_GT(no.aborted + pay.aborted, 0);
}

}  // namespace
}  // namespace semcor::load
