// Example 3 / Figure 1 end-to-end: the write-skew anomaly.
//
// Two withdrawal transaction types share the constraint
// acct_sav + acct_ch >= 0. Each is individually correct; the static
// analysis (Theorem 5) shows their SNAPSHOT pair condition fails, and the
// testbed exhibits the anomaly live — then shows SERIALIZABLE preventing it
// and first-committer-wins resolving the same-item case.

#include <cstdio>

#include "sem/check/advisor.h"
#include "sem/rt/monitor.h"
#include "sem/rt/oracle.h"
#include "workload/workload.h"

using namespace semcor;

namespace {

std::shared_ptr<const TxnProgram> Make(const Workload& w,
                                       const std::string& type, int64_t i,
                                       int64_t amount) {
  for (const TransactionType& t : w.app.types) {
    if (t.name == type) {
      const char* key = type.rfind("Deposit", 0) == 0 ? "d" : "w";
      return std::make_shared<TxnProgram>(
          t.make({{"i", Value::Int(i)}, {key, Value::Int(amount)}}));
    }
  }
  return nullptr;
}

void RunPair(const Workload& w, IsoLevel level) {
  Store store;
  LockManager locks;
  TxnManager mgr(&store, &locks);
  (void)w.setup(&store);
  MapEvalContext initial = store.SnapshotToMap();
  CommitLog log;
  StepDriver driver(&mgr, &log);
  InvalidationMonitor monitor(&store, &driver);
  driver.Add(Make(w, "Withdraw_sav", 1, 15), level);
  driver.Add(Make(w, "Withdraw_ch", 1, 15), level);
  driver.RunRoundRobin();

  const int64_t sav = store.ReadItemCommitted("acct_sav[1].bal").value().AsInt();
  const int64_t ch = store.ReadItemCommitted("acct_ch[1].bal").value().AsInt();
  OracleReport oracle =
      CheckSemanticCorrectness(initial, store, log, w.app.invariant);
  std::printf(
      "%-13s: committed=%d sav=%lld ch=%lld sum=%lld invalidations=%zu -> %s\n",
      IsoLevelName(level),
      (driver.run(0).outcome() == StepOutcome::kCommitted) +
          (driver.run(1).outcome() == StepOutcome::kCommitted),
      static_cast<long long>(sav), static_cast<long long>(ch),
      static_cast<long long>(sav + ch), monitor.events().size(),
      oracle.ok() ? "semantically correct" : "VIOLATION");
}

}  // namespace

int main() {
  Workload w = MakeBankingWorkload();

  // --- static side: what do the theorems say? ---
  std::printf("Static analysis (Theorem 5, SNAPSHOT pair conditions):\n");
  TheoremEngine engine(w.app, CheckOptions());
  LevelCheckReport snapshot =
      engine.CheckAtLevel("Withdraw_sav", IsoLevel::kSnapshot);
  for (const Obligation& o : snapshot.obligations) {
    std::printf("  vs %-28s %s%s\n", o.source.c_str(),
                o.Passed() ? "ok" : "FAILS",
                o.excused ? "  (write sets intersect: FCW resolves)" : "");
  }
  std::printf("  => Withdraw_sav at SNAPSHOT: %s\n\n",
              snapshot.correct ? "correct" : "NOT semantically correct");

  LevelAdvisor advisor(w.app, AdvisorOptions());
  LevelAdvice advice = advisor.Advise("Withdraw_sav");
  std::printf("Advisor: Withdraw_sav -> %s (snapshot correct: %s)\n\n",
              IsoLevelName(advice.recommended),
              advice.snapshot_correct ? "yes" : "no");

  // --- dynamic side: exhibit and prevent the anomaly ---
  std::printf("Testbed, Withdraw_sav(15) || Withdraw_ch(15), account 1 "
              "(sav=ch=10):\n");
  RunPair(w, IsoLevel::kSnapshot);      // both commit; sum goes negative
  RunPair(w, IsoLevel::kSerializable);  // blocking/aborts keep sum >= 0
  RunPair(w, IsoLevel::kRepeatableRead);

  return 0;
}
