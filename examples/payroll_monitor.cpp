// Example 2 (Hours / Print_Records) with the runtime invalidation monitor:
// shows "interference is static, invalidation is dynamic" (§2). Hours'
// individual updates interfere with I_sal; at READ UNCOMMITTED the
// interleaving turns that into real invalidations, at READ COMMITTED the
// record lock prevents every one of them.

#include <cstdio>

#include "sem/rt/monitor.h"
#include "workload/workload.h"

using namespace semcor;

namespace {

void Demo(IsoLevel print_level) {
  Workload w = MakePayrollWorkload();
  Store store;
  LockManager locks;
  TxnManager mgr(&store, &locks);
  (void)w.setup(&store);
  StepDriver driver(&mgr);
  InvalidationMonitor monitor(&store, &driver);

  auto program = [&](const std::string& type, int64_t i, int64_t h) {
    for (const TransactionType& t : w.app.types) {
      if (t.name == type) {
        std::map<std::string, Value> params = {{"i", Value::Int(i)}};
        if (type == "Hours") params["h"] = Value::Int(h);
        return std::make_shared<TxnProgram>(t.make(params));
      }
    }
    return std::shared_ptr<TxnProgram>();
  };
  driver.Add(program("Hours", 1, 4), IsoLevel::kReadCommitted);
  driver.Add(program("Print_Records", 1, 0), print_level);

  // Adversarial interleaving: Hours' first update lands between
  // Print_Records' control points.
  driver.RunSchedule({0, 1, 0, 1});
  driver.RunRoundRobin();

  std::printf("Print_Records at %-17s: %zu invalidation(s), %ld precondition "
              "violation(s)\n",
              IsoLevelName(print_level), monitor.events().size(),
              monitor.violated_preconditions());
  for (const InvalidationEvent& e : monitor.events()) {
    std::printf("    txn %d's active assertion falsified by txn %d's [%s]\n",
                e.victim, e.writer, e.writer_stmt.c_str());
  }
  if (!driver.run(1).txn().buffers.empty()) {
    const std::vector<Tuple>& rec = driver.run(1).txn().buffers.at("rec");
    if (!rec.empty()) {
      std::printf("    printed record: num_hrs=%lld sal=%lld (%s)\n",
                  static_cast<long long>(rec[0].at("num_hrs").AsInt()),
                  static_cast<long long>(rec[0].at("sal").AsInt()),
                  rec[0].at("sal").AsInt() ==
                          10 * rec[0].at("num_hrs").AsInt()
                      ? "consistent"
                      : "INCONSISTENT SNAPSHOT");
    }
  }
}

}  // namespace

int main() {
  std::printf("Hours updates emp[1] in two statements; I_sal = "
              "(rate * num_hrs == sal).\n\n");
  Demo(IsoLevel::kReadUncommitted);
  Demo(IsoLevel::kReadCommitted);
  Demo(IsoLevel::kRepeatableRead);
  return 0;
}
