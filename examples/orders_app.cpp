// The paper's §6 application end-to-end: analyze all four transaction types
// (Figures 2-5), print the per-level obligation outcomes that justify each
// assignment, then run a mixed-level concurrent workload on the testbed and
// verify semantic correctness at the advised levels.

#include <cstdio>

#include "sem/check/advisor.h"
#include "sem/check/obligations.h"
#include "sem/rt/oracle.h"
#include "txn/executor.h"
#include "workload/workload.h"

using namespace semcor;

int main() {
  Workload w = MakeOrdersWorkload(/*one_order_per_day=*/true);

  // --- static analysis ---
  std::printf("Analysis-cost summary (obligations per level):\n%s\n",
              RenderObligationCounts(CountObligations(w.app)).c_str());

  LevelAdvisor advisor(w.app, AdvisorOptions());
  std::vector<LevelAdvice> advice = advisor.AdviseAll();
  std::printf("Lowest correct level per transaction type (§5 procedure):\n");
  std::map<std::string, IsoLevel> levels;
  for (const LevelAdvice& a : advice) {
    levels[a.txn_type] = a.recommended;
    std::printf("  %-13s -> %s\n", a.txn_type.c_str(),
                IsoLevelName(a.recommended));
    // Why the level below fails: the first failing obligation.
    if (a.reports.size() >= 2) {
      const LevelCheckReport& below = a.reports[a.reports.size() - 2];
      if (const Obligation* f = below.FirstFailure()) {
        std::printf("     (%s fails: [%s] interfered by %s)\n",
                    IsoLevelName(below.level), f->assertion.c_str(),
                    f->source.c_str());
      }
    }
  }

  // --- dynamic validation ---
  std::printf("\nRunning 480 mixed transactions at the advised levels...\n");
  Store store;
  LockManager locks;
  TxnManager mgr(&store, &locks);
  if (!w.setup(&store).ok()) return 1;
  MapEvalContext initial = store.SnapshotToMap();
  CommitLog log;
  ConcurrentExecutor executor(&mgr, 4);
  double wall = 0;
  ExecStats stats = executor.Run(
      [&](Rng& rng) {
        return w.DrawFromMix(rng, levels, IsoLevel::kSerializable);
      },
      120, 25, &log, &wall);
  std::printf("  committed=%ld aborted=%ld deadlocks=%ld fcw=%ld "
              "throughput=%.0f txn/s p50=%.0fus\n",
              stats.committed, stats.aborted, stats.deadlocks,
              stats.fcw_conflicts, stats.Throughput(wall),
              stats.LatencyPercentileUs(50));

  OracleReport oracle =
      CheckSemanticCorrectness(initial, store, log, w.app.invariant);
  std::printf("  oracle: %s\n", oracle.ToString().c_str());
  std::printf("  final: %zu orders, maximum_date=%lld (one per day: %s)\n",
              store.CommittedTuples("ORDERS").size(),
              static_cast<long long>(
                  store.ReadItemCommitted("maximum_date").value().AsInt()),
              store.CommittedTuples("ORDERS").size() ==
                      static_cast<size_t>(store.ReadItemCommitted("maximum_date")
                                              .value()
                                              .AsInt())
                  ? "holds"
                  : "BROKEN");
  return oracle.ok() ? 0 : 1;
}
