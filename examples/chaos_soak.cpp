// semcor_chaos: the chaos soak — seeded faults at both I/O boundaries, with
// the oracles checked at the end.
//
//   semcor_chaos --duration-s=30 --threads=4 --seed=42
//
// Two phases, each half the budget:
//
//   net:  a server with statement/transaction/idle deadlines serves clients
//         through the ChaosProxy (frame drops, truncation, duplication,
//         delays, byte-splitting). Individual transactions may fail
//         arbitrarily; at the end the server must drain gracefully with
//         nothing in flight, every session closed, and the workload
//         invariant intact.
//
//   disk: a server with a WAL under a seeded disk-fault plan (append EIO,
//         short writes, fsync failures; panic policy) serves direct
//         clients. Every commit the client counts as acked carried a
//         durable fsync; after the run the WAL directory is recovered by a
//         fresh server and must hold at least those acked commits, with
//         the invariant intact over the recovered state.
//
// Writes BENCH_E12.json; exits non-zero if any oracle fails. Every fault is
// a pure function of --seed, so a failing run replays exactly.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/cli.h"
#include "common/str_util.h"
#include "net/chaos.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"

namespace {

using namespace std::chrono;

struct SoakCounters {
  std::atomic<long> attempted{0};
  std::atomic<long> committed{0};
  std::atomic<long> aborted{0};
  std::atomic<long> conn_errors{0};
  std::atomic<long> timeouts{0};
};

/// Hammers RunTxn against `port` until the deadline, reconnecting (fresh
/// session, fresh chaos stream) whenever the connection dies under us.
void ClientLoop(uint16_t port, uint64_t seed, steady_clock::time_point until,
                SoakCounters* out) {
  int txn = 0;
  while (steady_clock::now() < until) {
    semcor::net::ClientOptions copts;
    copts.port = port;
    copts.recv_timeout_ms = 5000;
    copts.backoff_seed = seed;
    semcor::net::Client client(copts);
    if (!client.Connect().ok() || !client.Hello().ok()) {
      out->conn_errors.fetch_add(1);
      std::this_thread::sleep_for(milliseconds(10));
      continue;
    }
    while (steady_clock::now() < until) {
      out->attempted.fetch_add(1);
      semcor::Result<semcor::net::TxnResult> run = client.RunTxn(
          "Withdraw_sav", semcor::net::kNegotiateLevel,
          {{"i", txn++ % 4}, {"w", 1}});
      if (!run.ok()) {
        out->conn_errors.fetch_add(1);
        break;  // connection torn — reconnect
      }
      if (run.value().committed) {
        out->committed.fetch_add(1);
      } else {
        out->aborted.fetch_add(1);
      }
      if (run.value().timed_out) out->timeouts.fetch_add(1);
    }
  }
}

int Fail(const char* what) {
  std::fprintf(stderr, "semcor_chaos: ORACLE FAILED: %s\n", what);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  int duration_s = 30;
  int threads = 4;
  uint64_t seed = 42;
  std::string wal_dir = "chaos_wal_dir";
  std::string report_id = "E12";

  semcor::cli::Flags flags(
      "semcor_chaos",
      "Seeded disk + network fault soak against the transaction server; "
      "checks the durability and graceful-degradation oracles.");
  flags.Int("duration-s", &duration_s, "total soak budget, split across phases");
  flags.Int("threads", &threads, "concurrent client threads");
  flags.U64("seed", &seed, "fault-plan seed (replays exactly)");
  flags.Str("wal-dir", &wal_dir, "scratch WAL directory for the disk phase");
  flags.Str("report-id", &report_id, "BENCH_<id>.json report id");
  if (!flags.Parse(argc, argv)) return 2;
  if (flags.help_requested() || flags.version_requested()) return 0;

  semcor::bench::JsonReport json(report_id);
  json.Scalar("seed", static_cast<long>(seed));
  json.Scalar("duration_s", duration_s);
  json.Scalar("threads", threads);
  const auto phase_budget = seconds(duration_s) / 2;
  int failures = 0;

  // ---- Phase 1: network chaos + deadlines + drain ----
  {
    semcor::net::ServerOptions sopts;
    sopts.workload = "banking";
    sopts.workers = 2;
    sopts.seed = seed;
    sopts.stmt_timeout_us = 200'000;
    sopts.txn_timeout_us = 1'000'000;
    sopts.idle_timeout_us = 2'000'000;
    semcor::net::Server server(sopts);
    if (semcor::Status s = server.Start(); !s.ok()) {
      std::fprintf(stderr, "semcor_chaos: net server: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    semcor::net::ChaosOptions copts;
    copts.upstream_port = server.port();
    copts.seed = seed;
    copts.p_close = 0.02;
    copts.p_truncate = 0.01;
    copts.p_duplicate = 0.01;
    copts.p_delay = 0.05;
    copts.delay_ms = 2;
    copts.split_bytes = 16;
    semcor::net::ChaosProxy proxy(copts);
    if (semcor::Status s = proxy.Start(); !s.ok()) {
      std::fprintf(stderr, "semcor_chaos: proxy: %s\n", s.ToString().c_str());
      return 1;
    }

    SoakCounters net;
    const auto until = steady_clock::now() + phase_budget;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back(ClientLoop, proxy.port(), seed + t, until, &net);
    }
    for (auto& th : pool) th.join();
    proxy.Stop();

    // Graceful drain: stop accepting, settle everything in flight, stop.
    server.RequestDrain();
    server.WaitUntilStopped();
    server.Stop();

    const semcor::net::ServerMetricsSnapshot m = server.Metrics();
    const semcor::net::ChaosStats cs = proxy.Stats();
    std::printf(
        "semcor_chaos: net phase: attempted=%ld committed=%ld aborted=%ld "
        "conn_errors=%ld chaos(chunks=%ld closes=%ld truncates=%ld "
        "dups=%ld) timeouts(stmt=%ld txn=%ld idle=%ld)\n",
        net.attempted.load(), net.committed.load(), net.aborted.load(),
        net.conn_errors.load(), cs.chunks, cs.closes, cs.truncates,
        cs.duplicates, m.stmt_timeouts, m.txn_timeouts, m.idle_timeouts);
    json.Scalar("net_attempted", net.attempted.load());
    json.Scalar("net_committed", net.committed.load());
    json.Scalar("net_conn_errors", net.conn_errors.load());
    json.Scalar("net_chaos_chunks", cs.chunks);
    json.Scalar("net_chaos_closes", cs.closes);
    json.Scalar("net_chaos_truncates", cs.truncates);
    json.Scalar("net_stmt_timeouts", m.stmt_timeouts);
    json.Scalar("net_txn_timeouts", m.txn_timeouts);
    json.Scalar("net_idle_timeouts", m.idle_timeouts);

    if (m.inflight != 0) failures += Fail("net: transactions still in flight");
    if (m.sessions_closed != m.sessions_accepted) {
      failures += Fail("net: leaked sessions");
    }
    if (!server.InvariantHolds()) failures += Fail("net: invariant violated");
    if (net.committed.load() == 0) failures += Fail("net: nothing committed");
    if (cs.closes + cs.truncates + cs.duplicates == 0) {
      failures += Fail("net: chaos injected nothing");
    }
    json.Scalar("net_ok", failures == 0 ? 1L : 0L);
  }

  // ---- Phase 2: disk faults under the panic policy ----
  long acked = 0;
  {
    std::remove((wal_dir + "/wal.log").c_str());
    semcor::net::ServerOptions sopts;
    sopts.workload = "banking";
    sopts.workers = 2;
    sopts.seed = seed;
    sopts.wal_dir = wal_dir;
    sopts.wal_fsync = "per_commit";
    sopts.wal_fsync_failure = "panic";
    // Sync failures only: an append fault would freeze the log within a few
    // transactions and end the phase immediately; sync faults exercise the
    // policy decision on every commit.
    sopts.disk_faults = semcor::StrCat("seed:", seed, ":0:0:0.002");
    semcor::net::Server server(sopts);
    if (semcor::Status s = server.Start(); !s.ok()) {
      std::fprintf(stderr, "semcor_chaos: disk server: %s\n",
                   s.ToString().c_str());
      return 1;
    }

    SoakCounters disk;
    const auto until = steady_clock::now() + phase_budget;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back(ClientLoop, server.port(), seed + 100 + t, until,
                        &disk);
    }
    for (auto& th : pool) th.join();
    server.Stop();
    acked = disk.committed.load();

    const semcor::net::ServerMetricsSnapshot m = server.Metrics();
    std::printf(
        "semcor_chaos: disk phase: attempted=%ld acked=%ld aborted=%ld "
        "acks_refused=%ld wal_failure=%s\n",
        disk.attempted.load(), acked, disk.aborted.load(),
        m.commit_acks_refused, server.WalFailure().ToString().c_str());
    json.Scalar("disk_attempted", disk.attempted.load());
    json.Scalar("disk_acked", acked);
    json.Scalar("disk_acks_refused", m.commit_acks_refused);
    json.Scalar("disk_wal_failure", server.WalFailure().ToString());

    if (acked == 0) failures += Fail("disk: nothing acked");
  }

  // ---- Oracle: recovery of the faulted log holds every acked commit ----
  {
    semcor::net::ServerOptions sopts;
    sopts.workload = "banking";
    sopts.workers = 1;
    sopts.wal_dir = wal_dir;  // no faults this time
    semcor::net::Server server(sopts);
    if (semcor::Status s = server.Start(); !s.ok()) {
      json.Write();
      std::fprintf(stderr, "semcor_chaos: recovery failed: %s\n",
                   s.ToString().c_str());
      return Fail("disk: recovery of the faulted log failed");
    }
    const long recovered =
        static_cast<long>(server.Recovery().recovered_commits);
    const bool invariant_ok = server.InvariantHolds();
    server.Stop();
    std::printf("semcor_chaos: recovery: recovered_commits=%ld acked=%ld "
                "invariant_ok=%d\n",
                recovered, acked, invariant_ok ? 1 : 0);
    json.Scalar("recovered_commits", recovered);
    if (recovered < acked) {
      failures += Fail("disk: recovery lost an acked commit");
    }
    if (!invariant_ok) {
      failures += Fail("disk: invariant violated over recovered state");
    }
  }

  json.Scalar("all_ok", failures == 0 ? 1L : 0L);
  json.Write();
  if (failures == 0) std::printf("semcor_chaos: OK\n");
  return failures == 0 ? 0 : 1;
}
