// Quickstart: annotate a small transaction pair, check the proof outline,
// ask the per-level theorems for the lowest correct isolation level, and run
// an adversarial interleaving on the built-in transaction-manager testbed.
//
// The application: a tiny inventory where `reserve` moves stock into a
// pending counter and `restock` adds stock. The consistency constraint is
// stock >= 0.

#include <cstdio>

#include "sem/check/advisor.h"
#include "sem/prog/builder.h"
#include "sem/check/annotation.h"
#include "sem/rt/oracle.h"
#include "txn/driver.h"

using namespace semcor;

namespace {

constexpr const char* kStock = "stock";
constexpr const char* kPending = "pending";

Expr Invariant() {
  return And(Ge(DbVar(kStock), Lit(int64_t{0})),
             Ge(DbVar(kPending), Lit(int64_t{0})));
}

/// reserve(n): if stock >= n, move n units from stock to pending.
TransactionType MakeReserve() {
  TransactionType type;
  type.name = "Reserve";
  type.make = [](const std::map<std::string, Value>& params) {
    const Expr ii = Invariant();
    const Expr b = Ge(Local("n"), Lit(int64_t{0}));
    ProgramBuilder builder("Reserve");
    builder.IPart(ii).BPart(b);
    builder.Logical("S0", kStock);
    builder.Pre(And(ii, b)).Read("S", kStock);
    // Stable fact after the read: stock can only have grown (restocks), and
    // S is the initial value we observed.
    const Expr after_read =
        And({ii, b, Ge(DbVar(kStock), Local("S")), Eq(Local("S"), Logical("S0"))});
    // After the stock write: both counters still non-negative and the stock
    // reflects the reservation (carried through to the postcondition).
    const Expr stock_written =
        And({b, Ge(DbVar(kStock), Lit(int64_t{0})),
             Ge(DbVar(kPending), Lit(int64_t{0})),
             Eq(DbVar(kStock), Sub(Logical("S0"), Local("n")))});
    builder.Pre(after_read).If(
        Ge(Local("S"), Local("n")), [&](ProgramBuilder& then_block) {
          then_block.Pre(And(after_read, Ge(Local("S"), Local("n"))))
              .Write(kStock, Sub(Local("S"), Local("n")));
          then_block.Pre(stock_written).Read("P", kPending);
          then_block
              .Pre(And(stock_written, Ge(Local("P"), Lit(int64_t{0}))))
              .Write(kPending, Add(Local("P"), Local("n")));
        });
    builder.Result(Implies(Ge(Local("S"), Local("n")),
                           Eq(DbVar(kStock), Sub(Logical("S0"), Local("n")))));
    return builder.Build(params);
  };
  type.analysis_scenarios = {{{"n", Value::Int(3)}}};
  return type;
}

/// restock(n): stock += n. The result asserts the increment really landed
/// (stock == initial + n). Try weakening it to just the invariant: the
/// advisor will then admit READ-UNCOMMITTED — and lost restocks become
/// semantically acceptable. Specification strength buys isolation down;
/// that trade is the paper's whole point.
TransactionType MakeRestock() {
  TransactionType type;
  type.name = "Restock";
  type.make = [](const std::map<std::string, Value>& params) {
    const Expr ii = Invariant();
    const Expr b = Ge(Local("n"), Lit(int64_t{0}));
    ProgramBuilder builder("Restock");
    builder.IPart(ii).BPart(b);
    builder.Logical("R0", kStock);
    builder.Pre(And(ii, b)).Read("S", kStock);
    builder
        .Pre(And({ii, b, Ge(Local("S"), Lit(int64_t{0})),
                  Eq(Local("S"), Logical("R0"))}))
        .Write(kStock, Add(Local("S"), Local("n")));
    builder.Result(Eq(DbVar(kStock), Add(Logical("R0"), Local("n"))));
    return builder.Build(params);
  };
  type.analysis_scenarios = {{{"n", Value::Int(5)}}};
  return type;
}

}  // namespace

int main() {
  // 1. Describe the application for the static analysis.
  Application app;
  app.name = "inventory";
  app.types = {MakeReserve(), MakeRestock()};
  app.invariant = Invariant();

  // 2. Check the proof outlines (the annotations really are a sequential
  //    proof of each transaction).
  for (const TransactionType& type : app.types) {
    TxnProgram p =
        PrepareForAnalysis(type.make(type.analysis_scenarios[0]), "");
    AnnotationReport report = CheckAnnotations(p);
    std::printf("%-8s outline: %s (%d checks)\n", type.name.c_str(),
                report.any_refuted ? "REFUTED"
                : report.all_proved ? "proved"
                                    : "partially proved",
                report.checked);
  }

  // 3. Run the §5 procedure: lowest correct level per type.
  LevelAdvisor advisor(app, AdvisorOptions());
  for (const LevelAdvice& advice : advisor.AdviseAll()) {
    std::printf("%-8s -> %s%s\n", advice.txn_type.c_str(),
                IsoLevelName(advice.recommended),
                advice.snapshot_correct ? "  (SNAPSHOT also correct)" : "");
  }

  // 4. Execute an adversarial interleaving on the testbed at the advised
  //    levels and let the runtime oracle confirm semantic correctness.
  Store store;
  LockManager locks;
  TxnManager mgr(&store, &locks);
  (void)store.CreateItem(kStock, Value::Int(10));
  (void)store.CreateItem(kPending, Value::Int(0));
  MapEvalContext initial = store.SnapshotToMap();
  CommitLog log;
  StepDriver driver(&mgr, &log);
  auto reserve = MakeReserve();
  auto restock = MakeRestock();
  driver.Add(std::make_shared<TxnProgram>(reserve.make({{"n", Value::Int(7)}})),
             advisor.Advise("Reserve").recommended);
  driver.Add(std::make_shared<TxnProgram>(restock.make({{"n", Value::Int(4)}})),
             advisor.Advise("Restock").recommended);
  driver.RunSchedule({0, 1, 0, 1});  // interleave
  driver.RunRoundRobin();

  OracleReport oracle =
      CheckSemanticCorrectness(initial, store, log, app.invariant);
  std::printf("interleaved run: stock=%lld pending=%lld -> %s\n",
              static_cast<long long>(
                  store.ReadItemCommitted(kStock).value().AsInt()),
              static_cast<long long>(
                  store.ReadItemCommitted(kPending).value().AsInt()),
              oracle.ToString().c_str());
  return oracle.ok() ? 0 : 1;
}
