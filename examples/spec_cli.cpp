// semcor_spec: conformance runner for isolation-tester specs.
//
// Parses each spec (the postgres src/test/isolation format subset), compiles
// it onto the statement model, executes every permutation at every isolation
// level, and diffs the per-level outcome rows against the spec's golden file
// (tests/specs/golden/<name>.golden by default). Exits non-zero on any
// parse error or conformance mismatch; --update-golden regenerates goldens.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/str_util.h"
#include "spec/compile.h"
#include "spec/runner.h"
#include "spec/spec.h"

using namespace semcor;        // NOLINT
using namespace semcor::spec;  // NOLINT

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: semcor_spec [options] <spec-file>...\n"
      "  --update-golden     write observed outcomes as the new goldens\n"
      "  --golden-dir=DIR    golden directory (default: <specdir>/golden)\n"
      "  --json=PATH         write a machine-readable summary JSON\n"
      "  --level=NAME        run one level only (no golden diff)\n");
}

std::string Dirname(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

struct SpecResult {
  std::string name;
  bool pass = false;
  SpecReport report;
  std::vector<std::string> diffs;
};

std::string JsonSummary(const std::vector<SpecResult>& results) {
  std::string out = "{\n  \"specs\": ";
  out += std::to_string(results.size());
  long failures = 0;
  for (const SpecResult& r : results) {
    if (!r.pass) ++failures;
  }
  out += ",\n  \"failures\": " + std::to_string(failures);
  out += ",\n  \"results\": [";
  for (size_t i = 0; i < results.size(); ++i) {
    const SpecResult& r = results[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"spec\": " + JsonQuote(r.name) +
           ", \"pass\": " + (r.pass ? "1" : "0") + ", \"levels\": [";
    for (size_t l = 0; l < r.report.levels.size(); ++l) {
      const LevelOutcome& o = r.report.levels[l];
      out += l == 0 ? "\n" : ",\n";
      out += StrCat("      {\"level\": ", JsonQuote(IsoLevelName(o.level)),
                    ", \"perms\": ", std::to_string(o.perms),
                    ", \"committed\": ", std::to_string(o.committed),
                    ", \"aborted\": ", std::to_string(o.aborted),
                    ", \"deadlock\": ", std::to_string(o.deadlock),
                    ", \"fcw\": ", std::to_string(o.fcw),
                    ", \"ssi\": ", std::to_string(o.ssi),
                    ", \"ssi_fp\": ", std::to_string(o.ssi_fp),
                    ", \"ssi_req\": ", std::to_string(o.ssi_req),
                    ", \"nonser\": ", std::to_string(o.nonser),
                    ", \"replay_div\": ", std::to_string(o.replay_div), "}");
    }
    out += "\n    ]}";
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool update_golden = false;
  std::string golden_dir;
  std::string json_path;
  std::string only_level;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--update-golden") {
      update_golden = true;
    } else if (arg.rfind("--golden-dir=", 0) == 0) {
      golden_dir = arg.substr(std::strlen("--golden-dir="));
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(std::strlen("--json="));
    } else if (arg.rfind("--level=", 0) == 0) {
      only_level = arg.substr(std::strlen("--level="));
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "semcor_spec: unknown option %s\n", arg.c_str());
      Usage();
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    Usage();
    return 2;
  }

  std::vector<SpecResult> results;
  bool all_ok = true;
  for (const std::string& file : files) {
    Result<IsolationSpec> parsed = ParseSpecFile(file);
    if (!parsed.ok()) {
      std::fprintf(stderr, "semcor_spec: %s\n",
                   parsed.status().message().c_str());
      all_ok = false;
      continue;
    }
    Result<CompiledSpec> compiled = CompileSpec(parsed.value());
    if (!compiled.ok()) {
      std::fprintf(stderr, "semcor_spec: %s\n",
                   compiled.status().message().c_str());
      all_ok = false;
      continue;
    }
    SpecRunner runner(compiled.value());
    Status init = runner.Init();
    if (!init.ok()) {
      std::fprintf(stderr, "semcor_spec: %s: %s\n", file.c_str(),
                   init.message().c_str());
      all_ok = false;
      continue;
    }

    SpecResult result;
    result.name = parsed.value().name;

    if (!only_level.empty()) {
      IsoLevel level;
      if (!ParseIsoLevel(only_level, &level)) {
        std::fprintf(stderr, "semcor_spec: unknown level %s\n",
                     only_level.c_str());
        return 2;
      }
      Result<LevelOutcome> out = runner.RunLevel(level);
      if (!out.ok()) {
        std::fprintf(stderr, "semcor_spec: %s: %s\n", file.c_str(),
                     out.status().message().c_str());
        all_ok = false;
        continue;
      }
      std::printf("spec %s\n%s\n", result.name.c_str(),
                  out.value().Row().c_str());
      continue;
    }

    Result<SpecReport> report = runner.RunAllLevels();
    if (!report.ok()) {
      std::fprintf(stderr, "semcor_spec: %s: %s\n", file.c_str(),
                   report.status().message().c_str());
      all_ok = false;
      continue;
    }
    result.report = report.value();

    const std::string dir =
        golden_dir.empty() ? Dirname(file) + "/golden" : golden_dir;
    const std::string golden_path = dir + "/" + result.name + ".golden";
    if (update_golden) {
      Status w = WriteTextFile(golden_path, result.report.Golden());
      if (!w.ok()) {
        std::fprintf(stderr, "semcor_spec: %s\n", w.message().c_str());
        all_ok = false;
        continue;
      }
      std::printf("updated %s\n", golden_path.c_str());
      result.pass = true;
      results.push_back(std::move(result));
      continue;
    }

    Result<std::string> golden_text = ReadTextFile(golden_path);
    if (!golden_text.ok()) {
      std::fprintf(stderr,
                   "semcor_spec: %s (generate it with --update-golden)\n",
                   golden_text.status().message().c_str());
      all_ok = false;
      result.pass = false;
      results.push_back(std::move(result));
      continue;
    }
    Result<SpecReport> golden = ParseGolden(golden_text.value(), golden_path);
    if (!golden.ok()) {
      std::fprintf(stderr, "semcor_spec: %s\n",
                   golden.status().message().c_str());
      all_ok = false;
      result.pass = false;
      results.push_back(std::move(result));
      continue;
    }

    result.pass = true;
    for (const LevelOutcome& observed : result.report.levels) {
      const LevelOutcome* expected = nullptr;
      for (const LevelOutcome& g : golden.value().levels) {
        if (g.level == observed.level) expected = &g;
      }
      if (expected == nullptr) {
        result.pass = false;
        result.diffs.push_back(
            StrCat("missing golden row for level ",
                   IsoLevelName(observed.level)));
        continue;
      }
      if (*expected != observed) {
        result.pass = false;
        result.diffs.push_back(StrCat("expected: ", expected->Row()));
        result.diffs.push_back(StrCat("observed: ", observed.Row()));
      }
    }
    if (golden.value().levels.size() != result.report.levels.size()) {
      result.pass = false;
      result.diffs.push_back("golden and observed level counts differ");
    }

    std::printf("%s %s\n", result.pass ? "PASS" : "FAIL",
                result.name.c_str());
    for (const LevelOutcome& o : result.report.levels) {
      std::printf("  %s\n", o.Row().c_str());
    }
    for (const std::string& d : result.diffs) {
      std::printf("  !! %s\n", d.c_str());
    }
    if (!result.pass) all_ok = false;
    results.push_back(std::move(result));
  }

  if (!json_path.empty()) {
    Status w = WriteTextFile(json_path, JsonSummary(results));
    if (!w.ok()) {
      std::fprintf(stderr, "semcor_spec: %s\n", w.message().c_str());
      all_ok = false;
    }
  }
  return all_ok ? 0 : 1;
}
