// The paper's §7 future work, realized: analyze the TPC-C-lite transaction
// types with the per-level theorems, assign each its lowest correct level,
// and compare throughput against all-SERIALIZABLE on the testbed.

#include <cstdio>

#include "sem/check/advisor.h"
#include "sem/rt/oracle.h"
#include "txn/executor.h"
#include "workload/workload.h"

using namespace semcor;

namespace {

double RunMix(const Workload& w, const std::map<std::string, IsoLevel>& levels,
              bool* correct) {
  Store store;
  LockManager locks;
  TxnManager mgr(&store, &locks);
  (void)w.setup(&store);
  MapEvalContext initial = store.SnapshotToMap();
  CommitLog log;
  ConcurrentExecutor executor(&mgr, 4);
  double wall = 0;
  ExecStats stats = executor.Run(
      [&](Rng& rng) {
        return w.DrawFromMix(rng, levels, IsoLevel::kSerializable);
      },
      150, 25, &log, &wall);
  *correct =
      CheckSemanticCorrectness(initial, store, log, w.app.invariant).ok();
  return stats.Throughput(wall);
}

}  // namespace

int main() {
  Workload w = MakeTpccWorkload();

  std::printf("Analyzing TPC-C-lite transaction types...\n");
  LevelAdvisor advisor(w.app, AdvisorOptions());
  std::map<std::string, IsoLevel> advised;
  for (const LevelAdvice& a : advisor.AdviseAll()) {
    advised[a.txn_type] = a.recommended;
    std::printf("  %-13s -> %-20s (snapshot ok: %s)\n", a.txn_type.c_str(),
                IsoLevelName(a.recommended),
                a.snapshot_correct ? "yes" : "no");
  }

  std::printf("\nRunning 600-transaction mixes (4 threads)...\n");
  bool ok_ser = false, ok_mixed = false;
  const double tps_ser = RunMix(w, {}, &ok_ser);  // fallback: all SER
  const double tps_mixed = RunMix(w, advised, &ok_mixed);
  std::printf("  all SERIALIZABLE : %7.0f txn/s  (%s)\n", tps_ser,
              ok_ser ? "semantically correct" : "VIOLATION");
  std::printf("  advised levels   : %7.0f txn/s  (%s)\n", tps_mixed,
              ok_mixed ? "semantically correct" : "VIOLATION");
  std::printf("  speedup          : %.2fx\n",
              tps_ser > 0 ? tps_mixed / tps_ser : 0.0);
  return ok_mixed && ok_ser ? 0 : 1;
}
