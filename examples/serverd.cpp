// semcor_serverd: the multi-client transaction server daemon.
//
//   semcor_serverd --workload=banking --port=0 --workers=4
//
// Serves one workload's transaction types over the length-prefixed binary
// protocol of src/net/wire.h, with per-session isolation-level negotiation
// (clients may request a level or let the server pick the lowest
// semantically-correct one per the paper's §5 procedure). Prints the bound
// port on stdout (and to --port-file, for scripts racing an ephemeral port),
// then runs until SIGINT (immediate stop), SIGTERM (graceful drain: stop
// accepting, let in-flight transactions finish up to --drain-timeout, final
// checkpoint), a client SHUTDOWN request, or --duration-s elapses.
// Exit codes: 0 = clean shutdown, 1 = setup error (including WAL recovery
// failure), 2 = usage error, 3 = the WAL froze on a device error under the
// panic policy (acked durability could no longer be honoured).

#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <string>

#include "common/cli.h"
#include "net/server.h"

namespace {

semcor::net::Server* g_server = nullptr;

void HandleStop(int) {
  // Only async-signal-safe work here (atomic store + self-pipe write); the
  // actual teardown happens on the main thread after WaitUntilStopped.
  if (g_server != nullptr) g_server->RequestStop();
}

void HandleDrain(int) {
  if (g_server != nullptr) g_server->RequestDrain();
}

}  // namespace

int main(int argc, char** argv) {
  semcor::net::ServerOptions options;
  std::string port_file;
  int port = 0;
  int duration_s = 0;
  int64_t max_inflight = options.max_inflight_txns;
  int64_t queue_limit = static_cast<int64_t>(options.session_queue_limit);
  int64_t lock_shards = 0;
  int64_t group_commit_us = options.group_commit_us;

  semcor::cli::Flags flags(
      "semcor_serverd",
      "Serve a semcor workload's transactions over TCP with per-session "
      "isolation-level negotiation.");
  flags.Str("workload", &options.workload,
            "workload to serve (banking|payroll|orders|orders_unique|tpcc)");
  flags.Int("tpcc-warehouses", &options.tpcc_warehouses,
            "tpcc: number of warehouses");
  flags.Int("tpcc-districts", &options.tpcc_districts,
            "tpcc: districts per warehouse");
  flags.Int("tpcc-customers", &options.tpcc_customers,
            "tpcc: customers per warehouse");
  flags.Int("tpcc-items", &options.tpcc_items, "tpcc: items in the catalog");
  flags.Int("port", &port, "TCP port to bind on 127.0.0.1 (0 = ephemeral)");
  flags.Int("workers", &options.workers, "worker threads executing statements");
  flags.I64("max-inflight", &max_inflight,
            "admission control: max concurrent transactions");
  flags.I64("queue-limit", &queue_limit,
            "per-session pending-request cap before BUSY");
  flags.Int("blocked-abort-threshold", &options.blocked_abort_threshold,
            "consecutive blocked retries before a deadlock-victim abort");
  flags.U64("seed", &options.seed, "seed for server-side draws");
  flags.I64("lock-shards", &lock_shards, "lock manager shards (0 = default)");
  flags.Str("port-file", &port_file, "write the bound port to this file");
  flags.Int("duration-s", &duration_s, "stop after N seconds (0 = run forever)");
  flags.Str("wal-dir", &options.wal_dir,
            "write-ahead-log directory (empty = memory-only)");
  flags.Str("wal-fsync", &options.wal_fsync,
            "WAL fsync policy: none|per_commit|group");
  flags.I64("group-commit-us", &group_commit_us,
            "group-commit epoch length in microseconds");
  flags.Str("wal-fsync-failure", &options.wal_fsync_failure,
            "reaction to a failed WAL fsync: panic|degrade");
  flags.Str("disk-faults", &options.disk_faults,
            "deterministic WAL fault plan: none | seed:N[:p_append[:p_short"
            "[:p_sync]]]");
  flags.DurationUs("stmt-timeout", &options.stmt_timeout_us,
                   "max blocked time per statement, 0 = off (us/ms/s suffix, "
                   "bare = ms)");
  flags.DurationUs("txn-timeout", &options.txn_timeout_us,
                   "max BEGIN-to-decision time per transaction, 0 = off");
  flags.DurationUs("idle-timeout", &options.idle_timeout_us,
                   "reap sessions with no inbound frames for this long, "
                   "0 = off");
  flags.DurationUs("drain-timeout", &options.drain_timeout_us,
                   "SIGTERM drain: wait this long for in-flight transactions "
                   "before forcing stop");
  if (!flags.Parse(argc, argv)) return 2;
  if (flags.help_requested() || flags.version_requested()) return 0;
  if (port < 0 || port > 65535) {
    std::fprintf(stderr, "semcor_serverd: bad --port=%d\n", port);
    return 2;
  }
  options.port = static_cast<uint16_t>(port);
  options.max_inflight_txns = static_cast<int>(max_inflight);
  options.session_queue_limit = static_cast<size_t>(queue_limit);
  options.lock_shards = static_cast<size_t>(lock_shards);
  options.group_commit_us = static_cast<uint32_t>(group_commit_us);

  semcor::net::Server server(options);
  if (semcor::Status s = server.Start(); !s.ok()) {
    // A failed start is a refusal to serve; the most important case is WAL
    // recovery rejecting the log (a committed transaction that cannot be
    // replayed) — serving anyway would silently drop acked durability.
    std::fprintf(stderr, "semcor_serverd: startup failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  std::printf("semcor_serverd: serving %s on 127.0.0.1:%u (%d workers)\n",
              options.workload.c_str(), server.port(), options.workers);
  std::fflush(stdout);
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "semcor_serverd: cannot write %s\n",
                   port_file.c_str());
      server.Stop();
      return 1;
    }
    std::fprintf(f, "%u\n", server.port());
    std::fclose(f);
  }

  g_server = &server;
  std::signal(SIGINT, HandleStop);
  std::signal(SIGTERM, HandleDrain);

  if (duration_s > 0) {
    // Alarm-based stop keeps the main thread free to wait.
    std::signal(SIGALRM, HandleStop);
    ::alarm(static_cast<unsigned>(duration_s));
  }
  server.WaitUntilStopped();
  const bool drained = server.draining();
  server.Stop();
  g_server = nullptr;

  const semcor::net::ServerMetricsSnapshot m = server.Metrics();
  std::printf(
      "semcor_serverd: stopped%s; sessions=%ld txns=%ld committed=%ld "
      "aborted=%ld deadlock_victims=%ld admission_rejected=%ld "
      "timeouts=%ld/%ld/%ld invariant_ok=%d\n",
      drained ? " (drained)" : "", m.sessions_accepted,
      m.Committed() + m.Aborted(), m.Committed(), m.Aborted(),
      m.deadlock_victims, m.admission_rejected, m.stmt_timeouts,
      m.txn_timeouts, m.idle_timeouts, server.InvariantHolds() ? 1 : 0);
  if (semcor::Status wal = server.WalFailure(); !wal.ok()) {
    std::fprintf(stderr,
                 "semcor_serverd: WAL froze under the panic policy: %s\n",
                 wal.ToString().c_str());
    return 3;
  }
  return 0;
}
