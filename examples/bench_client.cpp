// semcor_bench_client: closed-loop load generator for semcor_serverd.
//
//   semcor_bench_client --port=7421 --threads=4 --txns=50 --levels=negotiate
//
// Each thread opens one session and runs --txns transactions drawn by the
// server from its workload mix, either negotiating the isolation level
// per the paper's §5 procedure (--levels=negotiate) or pinning one level
// per thread round-robin from a comma-separated list (--levels=ru,rc,rr,si).
// Afterwards it fetches STATS, cross-checks the server's commit/abort/level
// counters against the client-side tallies, and writes BENCH_<id>.json.
// Exit codes: 0 = done and counters consistent, 1 = run failure or counter
// mismatch, 2 = usage error.

#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/cli.h"
#include "common/str_util.h"
#include "net/client.h"
#include "txn/isolation.h"

namespace {

using namespace semcor;
using net::Client;
using net::ClientOptions;
using net::TxnResult;

struct Tally {
  std::array<long, kIsoLevelCount> commits{};
  std::array<long, kIsoLevelCount> aborts{};
  long busy_retries = 0;
  long blocked_retries = 0;
  long negotiated = 0;
  long advisor_correct = 0;
  std::vector<double> latency_us;

  long Committed() const {
    long n = 0;
    for (long c : commits) n += c;
    return n;
  }
  long Aborted() const {
    long n = 0;
    for (long a : aborts) n += a;
    return n;
  }
  void Merge(const Tally& other) {
    for (int i = 0; i < kIsoLevelCount; ++i) {
      commits[i] += other.commits[i];
      aborts[i] += other.aborts[i];
    }
    busy_retries += other.busy_retries;
    blocked_retries += other.blocked_retries;
    negotiated += other.negotiated;
    advisor_correct += other.advisor_correct;
    latency_us.insert(latency_us.end(), other.latency_us.begin(),
                      other.latency_us.end());
  }
};

bool ParseLevelList(const std::string& spec, std::vector<uint8_t>* out) {
  size_t pos = 0;
  while (pos <= spec.size()) {
    const size_t comma = spec.find(',', pos);
    const std::string name =
        spec.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    IsoLevel level;
    if (!ParseIsoLevel(name, &level)) return false;
    out->push_back(static_cast<uint8_t>(level));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return !out->empty();
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  int threads = 4;
  int txns = 50;
  std::string levels_spec = "negotiate";
  std::string report_id = "E10";
  bool shutdown_server = false;
  int max_busy_retries = 1000;
  int timeout_ms = 20000;

  cli::Flags flags("semcor_bench_client",
                   "Closed-loop load generator and counter cross-check for "
                   "semcor_serverd.");
  flags.Str("host", &host, "server host");
  flags.Int("port", &port, "server port (required)");
  flags.Int("threads", &threads, "client threads (one session each)");
  flags.Int("txns", &txns, "transactions per thread");
  flags.Str("levels", &levels_spec,
            "'negotiate' or CSV of levels pinned per thread round-robin "
            "(ru,rc,rc_fcw,rr,ser,si)");
  flags.Str("report-id", &report_id, "writes BENCH_<id>.json");
  flags.Bool("shutdown-server", &shutdown_server,
             "send SHUTDOWN after the run (CI convenience)");
  flags.Int("max-busy-retries", &max_busy_retries,
            "give up after this many consecutive BUSY responses");
  flags.Int("timeout-ms", &timeout_ms, "per-receive timeout");
  if (!flags.Parse(argc, argv)) return 2;
  if (flags.help_requested() || flags.version_requested()) return 0;
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "semcor_bench_client: --port is required\n");
    return 2;
  }
  if (threads < 1) threads = 1;
  if (txns < 1) txns = 1;

  std::vector<uint8_t> pinned_levels;
  if (levels_spec != "negotiate" &&
      !ParseLevelList(levels_spec, &pinned_levels)) {
    std::fprintf(stderr, "semcor_bench_client: bad --levels='%s'\n",
                 levels_spec.c_str());
    return 2;
  }

  ClientOptions copts;
  copts.host = host;
  copts.port = static_cast<uint16_t>(port);
  copts.recv_timeout_ms = timeout_ms;

  Tally total;
  std::mutex tally_mu;
  std::vector<std::string> errors;
  std::vector<std::thread> pool;
  pool.reserve(threads);
  const auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      Tally local;
      Client client(copts);
      auto fail = [&](const std::string& what, const Status& s) {
        std::lock_guard<std::mutex> lock(tally_mu);
        errors.push_back(StrCat("thread ", t, ": ", what, ": ", s.ToString()));
      };
      if (Status s = client.Connect(); !s.ok()) return fail("connect", s);
      Result<net::HelloResp> hello = client.Hello();
      if (!hello.ok()) return fail("hello", hello.status());
      const uint8_t level =
          pinned_levels.empty()
              ? net::kNegotiateLevel
              : pinned_levels[static_cast<size_t>(t) % pinned_levels.size()];
      for (int i = 0; i < txns; ++i) {
        // Empty type: the server draws from its workload mix.
        Result<TxnResult> run =
            client.RunTxn("", level, {}, max_busy_retries);
        if (!run.ok()) return fail(StrCat("txn ", i), run.status());
        const TxnResult& r = run.value();
        if (r.committed) {
          local.commits[r.level]++;
          local.latency_us.push_back(r.latency_us);
        } else {
          local.aborts[r.level]++;
        }
        local.busy_retries += r.busy_retries;
        local.blocked_retries += r.blocked_retries;
        if (r.negotiated) local.negotiated++;
        if (r.advisor_correct) local.advisor_correct++;
      }
      std::lock_guard<std::mutex> lock(tally_mu);
      total.Merge(local);
    });
  }
  for (std::thread& t : pool) t.join();
  const double wall =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - start)
          .count();
  if (!errors.empty()) {
    for (const std::string& e : errors) {
      std::fprintf(stderr, "semcor_bench_client: %s\n", e.c_str());
    }
    return 1;
  }

  // Fetch the server's view and cross-check it against the client tallies.
  Client control(copts);
  if (Status s = control.Connect(); !s.ok()) {
    std::fprintf(stderr, "semcor_bench_client: stats connect: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  if (Result<net::HelloResp> h = control.Hello(); !h.ok()) {
    std::fprintf(stderr, "semcor_bench_client: stats hello: %s\n",
                 h.status().ToString().c_str());
    return 1;
  }
  Result<net::StatsResp> stats_result = control.Stats();
  if (!stats_result.ok()) {
    std::fprintf(stderr, "semcor_bench_client: stats: %s\n",
                 stats_result.status().ToString().c_str());
    return 1;
  }
  const net::StatsResp& stats = stats_result.value();

  bool consistent = true;
  auto check = [&consistent](const std::string& what, long client_v,
                             int64_t server_v) {
    if (client_v != server_v) {
      std::fprintf(stderr,
                   "semcor_bench_client: MISMATCH %s: client=%ld server=%lld\n",
                   what.c_str(), client_v,
                   static_cast<long long>(server_v));
      consistent = false;
    }
  };
  check("committed", total.Committed(), stats.Counter("committed"));
  check("aborted", total.Aborted(), stats.Counter("aborted"));
  bench::Table per_level({"level", "commits", "aborts"});
  for (int i = 0; i < kIsoLevelCount; ++i) {
    IsoLevel level;
    if (!IsoLevelFromIndex(i, &level)) continue;
    const char* name = IsoLevelName(level);
    check(StrCat("commit.", name), total.commits[i],
          stats.Counter(StrCat("commit.", name)));
    check(StrCat("abort.", name), total.aborts[i],
          stats.Counter(StrCat("abort.", name)));
    if (total.commits[i] == 0 && total.aborts[i] == 0) continue;
    per_level.AddRow({name, std::to_string(total.commits[i]),
                      std::to_string(total.aborts[i])});
  }
  const int64_t invariant_ok = stats.Counter("invariant_ok", -1);
  if (invariant_ok != 1) {
    std::fprintf(stderr, "semcor_bench_client: server invariant violated\n");
    consistent = false;
  }

  std::printf(
      "bench: %ld committed, %ld aborted in %.2fs (%.0f tps); "
      "busy_retries=%ld blocked_retries=%ld negotiated=%ld; "
      "server p50=%.0fus p95=%.0fus p99=%.0fus; counters %s\n",
      total.Committed(), total.Aborted(), wall,
      wall > 0 ? total.Committed() / wall : 0, total.busy_retries,
      total.blocked_retries, total.negotiated, stats.Gauge("p50_us"),
      stats.Gauge("p95_us"), stats.Gauge("p99_us"),
      consistent ? "consistent" : "INCONSISTENT");
  per_level.Print();

  bench::JsonReport json(report_id);
  json.Scalar("tool", "semcor_bench_client");
  json.Scalar("levels", levels_spec);
  json.Scalar("threads", threads);
  json.Scalar("txns_per_thread", txns);
  json.Scalar("committed", total.Committed());
  json.Scalar("aborted", total.Aborted());
  json.Scalar("wall_s", wall);
  json.Scalar("throughput_tps", wall > 0 ? total.Committed() / wall : 0.0);
  json.Scalar("busy_retries", total.busy_retries);
  json.Scalar("blocked_retries", total.blocked_retries);
  json.Scalar("negotiated", total.negotiated);
  json.Scalar("p50_us", stats.Gauge("p50_us"));
  json.Scalar("p95_us", stats.Gauge("p95_us"));
  json.Scalar("p99_us", stats.Gauge("p99_us"));
  json.Scalar("server_deadlock_victims", stats.Counter("deadlock_victims"));
  json.Scalar("server_admission_rejected", stats.Counter("admission_rejected"));
  json.Scalar("server_invariant_ok", invariant_ok);
  // Durability counters: all zero when the server runs memory-only (the
  // counters are simply absent from STATS and Counter() defaults to 0).
  json.Scalar("server_wal_appends", stats.Counter("wal_appends"));
  json.Scalar("server_fsyncs", stats.Counter("fsyncs"));
  json.Scalar("server_group_commit_batches",
              stats.Counter("group_commit_batches"));
  json.Scalar("server_mean_batch_size", stats.Gauge("group_commit_mean_batch"));
  json.Scalar("server_recovery_replayed_txns",
              stats.Counter("recovery_replayed_txns"));
  json.Scalar("server_recovered_commits", stats.Counter("recovered_commits"));
  json.Scalar("counters_consistent", consistent ? 1L : 0L);
  json.AddTable("per_level", per_level);
  if (!json.Write()) return 1;

  if (shutdown_server) {
    if (Status s = control.Shutdown(); !s.ok()) {
      std::fprintf(stderr, "semcor_bench_client: shutdown: %s\n",
                   s.ToString().c_str());
      return 1;
    }
  }
  return consistent ? 0 : 1;
}
