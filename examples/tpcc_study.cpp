// semcor_tpcc_study: the E15 mixed-level TPC-C study, over the wire.
//
//   semcor_tpcc_study --warehouses=2 --rate=400 --measure-ms=2000
//
// Runs the scaled TPC-C workload through the full network stack — the same
// net::Server that semcor_serverd wraps, restarted per configuration for a
// clean initial state, driven by net::Client sessions over real loopback
// TCP — under the open-loop load generator of src/load/. One configuration
// per isolation posture:
//
//   ser        every session pinned to SERIALIZABLE (2PL)
//   si         every session pinned to SNAPSHOT (FCW, no skew detection)
//   ssi        every session pinned to SSI (snapshot + dangerous structures)
//   negotiate  each BEGIN takes the server's per-type §5 recommendation
//
// The load is open-loop (pgbench --rate discipline): arrivals fire at the
// target rate regardless of completion speed, latency is measured from the
// *scheduled* arrival so queueing behind a slow posture is not coordinated
// away, and connections exceed load workers so backlog queues rather than
// throttling arrivals. The per-type think times in the workload metadata
// describe the spec's per-terminal pacing; the aggregate target rate here
// plays the role of the terminal population.
//
// Emits BENCH_E15.json with a tpmC-style metric (measured NewOrder commits
// per minute), p50/p95/p99 per transaction type, and per-level abort rates.
// Exit codes: 0 = all configurations ran with the invariant green and the
// advisor-negotiated mix sustained at least the all-SERIALIZABLE goodput,
// 1 = run failure or gate miss, 2 = usage error.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/cli.h"
#include "common/str_util.h"
#include "load/clock.h"
#include "load/load.h"
#include "net/client.h"
#include "net/server.h"
#include "txn/isolation.h"

namespace {

using namespace semcor;

struct ConfigResult {
  std::string name;
  load::LoadReport report;
  net::StatsResp stats;
  long errors = 0;           ///< client-side transport/protocol failures
  int levels_used = 0;       ///< distinct levels with server-side begins
  bool invariant_ok = false;
  double tpmc = 0;           ///< measured NewOrder commits per minute
};

std::vector<std::string> SplitCsv(const std::string& spec) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos <= spec.size()) {
    const size_t comma = spec.find(',', pos);
    const std::string item =
        spec.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// Maps a config token to the BEGIN level byte. "negotiate" asks the server
/// to pick per the paper's §5 procedure; everything else pins a level.
bool ConfigLevel(const std::string& name, uint8_t* out) {
  if (name == "negotiate") {
    *out = net::kNegotiateLevel;
    return true;
  }
  IsoLevel level;
  if (!ParseIsoLevel(name, &level)) return false;
  *out = static_cast<uint8_t>(level);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int warehouses = 2;
  int districts = 2;
  int customers = 8;
  int items = 16;
  int rate = 400;
  int load_workers = 4;
  int connections = 16;
  int server_workers = 4;
  int64_t warmup_ms = 200;
  int64_t measure_ms = 2000;
  int64_t drain_ms = 4000;
  int max_busy_retries = 50;
  uint64_t seed = 1;
  std::string configs_spec = "ser,si,ssi,negotiate";
  std::string report_id = "E15";

  cli::Flags flags("semcor_tpcc_study",
                   "Open-loop TPC-C study over the wire across the isolation "
                   "grid (E15): pinned SERIALIZABLE/SNAPSHOT/SSI vs the "
                   "advisor-negotiated mix.");
  flags.Int("warehouses", &warehouses, "TPC-C warehouses (scale unit)");
  flags.Int("districts", &districts, "districts per warehouse");
  flags.Int("customers", &customers, "customers per warehouse");
  flags.Int("items", &items, "items in the catalog");
  flags.Int("rate", &rate, "open-loop arrival rate, txns/s");
  flags.Int("load-workers", &load_workers, "load generator worker threads");
  flags.Int("connections", &connections,
            "client sessions (should exceed --load-workers)");
  flags.Int("server-workers", &server_workers, "server worker threads");
  flags.I64("warmup-ms", &warmup_ms, "unrecorded warmup window");
  flags.I64("measure-ms", &measure_ms, "recorded measurement window");
  flags.I64("drain-ms", &drain_ms, "backlog grace before arrivals drop");
  flags.Int("max-busy-retries", &max_busy_retries,
            "BUSY bounces absorbed before an operation counts as shed");
  flags.U64("seed", &seed, "server-side draw seed");
  flags.Str("configs", &configs_spec,
            "CSV from {ser,si,ssi,negotiate} (also accepts full level names)");
  flags.Str("report-id", &report_id, "writes BENCH_<id>.json");
  if (!flags.Parse(argc, argv)) return 2;
  if (flags.help_requested() || flags.version_requested()) return 0;
  if (warehouses < 2) {
    // One warehouse removes the remote-supply path NewOrder needs for
    // cross-warehouse contention; the study is not TPC-C shaped below 2.
    std::fprintf(stderr, "semcor_tpcc_study: --warehouses must be >= 2\n");
    return 2;
  }

  std::vector<std::string> config_names;
  for (const std::string& name : SplitCsv(configs_spec)) {
    uint8_t level;
    if (!ConfigLevel(name, &level)) {
      std::fprintf(stderr, "semcor_tpcc_study: bad config '%s'\n",
                   name.c_str());
      return 2;
    }
    config_names.push_back(name);
  }
  if (config_names.empty()) {
    std::fprintf(stderr, "semcor_tpcc_study: --configs is empty\n");
    return 2;
  }

  std::vector<ConfigResult> results;
  for (const std::string& config : config_names) {
    uint8_t level = 0;
    ConfigLevel(config, &level);

    net::ServerOptions sopts;
    sopts.workload = "tpcc";
    sopts.tpcc_warehouses = warehouses;
    sopts.tpcc_districts = districts;
    sopts.tpcc_customers = customers;
    sopts.tpcc_items = items;
    sopts.workers = server_workers;
    sopts.seed = seed;
    net::Server server(sopts);
    if (Status s = server.Start(); !s.ok()) {
      std::fprintf(stderr, "semcor_tpcc_study: [%s] server start: %s\n",
                   config.c_str(), s.ToString().c_str());
      return 1;
    }

    net::ClientOptions copts;
    copts.port = server.port();
    std::vector<std::unique_ptr<net::Client>> clients;
    clients.reserve(connections);
    bool connected = true;
    for (int i = 0; i < connections; ++i) {
      auto client = std::make_unique<net::Client>(copts);
      if (Status s = client->Connect(); !s.ok()) {
        std::fprintf(stderr, "semcor_tpcc_study: [%s] connect %d: %s\n",
                     config.c_str(), i, s.ToString().c_str());
        connected = false;
        break;
      }
      if (Result<net::HelloResp> h = client->Hello(); !h.ok()) {
        std::fprintf(stderr, "semcor_tpcc_study: [%s] hello %d: %s\n",
                     config.c_str(), i, h.status().ToString().c_str());
        connected = false;
        break;
      }
      clients.push_back(std::move(client));
    }
    if (!connected) {
      server.Stop();
      return 1;
    }

    load::LoadOptions lopts;
    lopts.target_rate = rate;
    lopts.workers = load_workers;
    lopts.connections = connections;
    lopts.warmup_us = warmup_ms * 1000;
    lopts.measure_us = measure_ms * 1000;
    lopts.max_drain_us = drain_ms * 1000;

    std::mutex err_mu;
    long errors = 0;
    load::RealClock clock;
    // Each connection slot is owned by exactly one load worker, so the
    // non-thread-safe Client behind it is never shared.
    load::LoadGenerator gen(lopts, &clock, [&](int conn, uint64_t) {
      load::OpOutcome out;
      Result<net::TxnResult> run =
          clients[static_cast<size_t>(conn)]->RunTxn("", level, {},
                                                     max_busy_retries);
      if (!run.ok()) {
        // Either the server shed the load past the retry budget or the
        // transport failed; both count as a non-committed outcome so the
        // open loop keeps its schedule.
        std::lock_guard<std::mutex> lock(err_mu);
        ++errors;
        out.type = "error";
        out.busy = true;
        return out;
      }
      const net::TxnResult& r = run.value();
      out.type = r.txn_type;
      out.committed = r.committed;
      out.timed_out = r.timed_out;
      out.busy_retries = r.busy_retries;
      return out;
    });
    ConfigResult result;
    result.name = config;
    result.report = gen.Run();
    result.errors = errors;

    // All workers have joined: the server is quiescent, so invariant_ok in
    // STATS is exact and the per-level counters are final.
    net::Client control(copts);
    Status cs = control.Connect();
    Result<net::HelloResp> ch =
        cs.ok() ? control.Hello() : Result<net::HelloResp>(cs);
    Result<net::StatsResp> stats =
        ch.ok() ? control.Stats() : Result<net::StatsResp>(ch.status());
    server.Stop();
    if (!stats.ok()) {
      std::fprintf(stderr, "semcor_tpcc_study: [%s] stats: %s\n",
                   config.c_str(), stats.status().ToString().c_str());
      return 1;
    }
    result.stats = stats.value();
    result.invariant_ok = result.stats.Counter("invariant_ok", -1) == 1;
    for (int i = 0; i < kIsoLevelCount; ++i) {
      IsoLevel l;
      if (!IsoLevelFromIndex(i, &l)) continue;
      if (result.stats.Counter(StrCat("begin.", IsoLevelName(l))) > 0) {
        result.levels_used++;
      }
    }
    const auto no = result.report.per_type.find("TNewOrder");
    if (no != result.report.per_type.end() &&
        result.report.measured_seconds > 0) {
      result.tpmc = static_cast<double>(no->second.committed) /
                    result.report.measured_seconds * 60.0;
    }
    std::printf(
        "[%s] scheduled=%ld measured=%ld committed=%ld aborted=%ld "
        "busy=%ld dropped=%ld errors=%ld tpmC=%.0f p99=%lldus "
        "levels_used=%d invariant=%s\n",
        config.c_str(), result.report.scheduled, result.report.measured,
        result.report.committed, result.report.aborted, result.report.busy,
        result.report.dropped, result.errors, result.tpmc,
        static_cast<long long>(result.report.latency.Percentile(99)),
        result.levels_used, result.invariant_ok ? "ok" : "VIOLATED");
    results.push_back(std::move(result));
  }

  // --- report ---
  bench::Table summary({"config", "committed", "aborted", "busy", "dropped",
                        "tput_tps", "tpmC", "p50_us", "p99_us", "levels",
                        "invariant"});
  bench::Table per_type({"config", "type", "completed", "committed",
                         "aborted", "p50_us", "p95_us", "p99_us"});
  bench::Table per_level({"config", "level", "commits", "aborts",
                          "abort_rate"});
  for (const ConfigResult& r : results) {
    summary.AddRow({r.name, std::to_string(r.report.committed),
                    std::to_string(r.report.aborted),
                    std::to_string(r.report.busy),
                    std::to_string(r.report.dropped),
                    StrCat(static_cast<long>(r.report.throughput())),
                    StrCat(static_cast<long>(r.tpmc)),
                    std::to_string(r.report.latency.Percentile(50)),
                    std::to_string(r.report.latency.Percentile(99)),
                    std::to_string(r.levels_used),
                    r.invariant_ok ? "ok" : "VIOLATED"});
    for (const auto& [type, t] : r.report.per_type) {
      per_type.AddRow({r.name, type, std::to_string(t.completed),
                       std::to_string(t.committed), std::to_string(t.aborted),
                       std::to_string(t.latency.Percentile(50)),
                       std::to_string(t.latency.Percentile(95)),
                       std::to_string(t.latency.Percentile(99))});
    }
    for (int i = 0; i < kIsoLevelCount; ++i) {
      IsoLevel l;
      if (!IsoLevelFromIndex(i, &l)) continue;
      const char* name = IsoLevelName(l);
      const int64_t commits = r.stats.Counter(StrCat("commit.", name));
      const int64_t aborts = r.stats.Counter(StrCat("abort.", name));
      if (commits == 0 && aborts == 0) continue;
      const double rate_pct =
          100.0 * static_cast<double>(aborts) /
          static_cast<double>(commits + aborts);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1f%%", rate_pct);
      per_level.AddRow({r.name, name, std::to_string(commits),
                        std::to_string(aborts), buf});
    }
  }
  summary.Print();
  per_type.Print();
  per_level.Print();

  // --- gates ---
  bool ok = true;
  const ConfigResult* ser = nullptr;
  const ConfigResult* negotiated = nullptr;
  for (const ConfigResult& r : results) {
    if (!r.invariant_ok) {
      std::fprintf(stderr,
                   "semcor_tpcc_study: GATE invariant violated under %s\n",
                   r.name.c_str());
      ok = false;
    }
    if (r.name == "ser" || r.name == "serializable") ser = &r;
    if (r.name == "negotiate") negotiated = &r;
  }
  if (ser != nullptr && negotiated != nullptr &&
      negotiated->report.committed < ser->report.committed) {
    std::fprintf(stderr,
                 "semcor_tpcc_study: GATE advisor-negotiated goodput %ld < "
                 "all-SERIALIZABLE %ld\n",
                 negotiated->report.committed, ser->report.committed);
    ok = false;
  }

  bench::JsonReport json(report_id);
  json.Scalar("tool", "semcor_tpcc_study");
  json.Scalar("warehouses", warehouses);
  json.Scalar("districts_per_warehouse", districts);
  json.Scalar("customers_per_warehouse", customers);
  json.Scalar("items", items);
  json.Scalar("target_rate_tps", rate);
  json.Scalar("connections", connections);
  json.Scalar("load_workers", load_workers);
  json.Scalar("server_workers", server_workers);
  json.Scalar("measure_ms", measure_ms);
  for (const ConfigResult& r : results) {
    json.Scalar(StrCat(r.name, ".committed"), r.report.committed);
    json.Scalar(StrCat(r.name, ".aborted"), r.report.aborted);
    json.Scalar(StrCat(r.name, ".busy"), r.report.busy);
    json.Scalar(StrCat(r.name, ".dropped"), r.report.dropped);
    json.Scalar(StrCat(r.name, ".errors"), r.errors);
    json.Scalar(StrCat(r.name, ".throughput_tps"), r.report.throughput());
    json.Scalar(StrCat(r.name, ".tpmC"), r.tpmc);
    json.Scalar(StrCat(r.name, ".p50_us"),
                static_cast<long>(r.report.latency.Percentile(50)));
    json.Scalar(StrCat(r.name, ".p95_us"),
                static_cast<long>(r.report.latency.Percentile(95)));
    json.Scalar(StrCat(r.name, ".p99_us"),
                static_cast<long>(r.report.latency.Percentile(99)));
    json.Scalar(StrCat(r.name, ".levels_used"), r.levels_used);
    json.Scalar(StrCat(r.name, ".invariant_ok"), r.invariant_ok ? 1L : 0L);
    json.Scalar(StrCat(r.name, ".ssi_aborts"),
                r.stats.Counter("ssi_aborts"));
    json.Scalar(StrCat(r.name, ".ssi_false_positive_aborts"),
                r.stats.Counter("ssi_false_positive_aborts"));
    json.Scalar(StrCat(r.name, ".advisor_overridden"),
                r.stats.Counter("advisor_overridden"));
  }
  json.Scalar("gates_ok", ok ? 1L : 0L);
  json.AddTable("summary", summary);
  json.AddTable("per_type", per_type);
  json.AddTable("per_level", per_level);
  if (!json.Write()) return 1;
  return ok ? 0 : 1;
}
