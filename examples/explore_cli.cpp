// semcor_explore: parallel schedule-space exploration with counterexample
// shrinking, cross-checked against the paper's static level analysis.
//
//   semcor_explore --workload=banking --level=snapshot --threads=8
//                  --budget=100000 --seed=42
//
// Fault injection: --faults=seed:N runs every schedule under a deterministic
// fault plan (forced aborts, transient lock failures, crash-before-commit)
// and switches aborts to schedulable rollback, so the explorer can interleave
// undo writes with other transactions (Theorem 1's hazard at READ
// UNCOMMITTED). --exec-items=N instead runs the closed-loop concurrent
// executor as a resilience smoke test and prints its statistics.
//
// Exit codes: 0 = done (cross-check consistent), 1 = soundness violation
// (static says correct, exploration found an anomaly), 2 = anomalies found
// while --expect-no-anomalies was set, 3 = usage / setup error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "explore/crosscheck.h"
#include "txn/executor.h"
#include "workload/workload.h"

namespace {

using namespace semcor;

struct CliOptions {
  std::string workload = "banking";
  std::string mix;          // empty = every explore mix of the workload
  std::string level = "snapshot";
  ExploreOptions explore;
  bool expect_no_anomalies = false;
  bool atomic_rollback = false;  // opt out of schedulable rollback
  int max_retries = 3;           // executor-mode retry budget
  int exec_items = 0;            // >0: executor smoke mode, items per thread
};

bool ParseLevel(const std::string& name, IsoLevel* out) {
  struct Entry {
    const char* name;
    IsoLevel level;
  };
  static const Entry kLevels[] = {
      {"read_uncommitted", IsoLevel::kReadUncommitted},
      {"ru", IsoLevel::kReadUncommitted},
      {"read_committed", IsoLevel::kReadCommitted},
      {"rc", IsoLevel::kReadCommitted},
      {"read_committed_fcw", IsoLevel::kReadCommittedFcw},
      {"rc_fcw", IsoLevel::kReadCommittedFcw},
      {"repeatable_read", IsoLevel::kRepeatableRead},
      {"rr", IsoLevel::kRepeatableRead},
      {"serializable", IsoLevel::kSerializable},
      {"snapshot", IsoLevel::kSnapshot},
  };
  for (const Entry& e : kLevels) {
    if (name == e.name) {
      *out = e.level;
      return true;
    }
  }
  return false;
}

std::vector<IsoLevel> AllLevels() {
  return {IsoLevel::kReadUncommitted, IsoLevel::kReadCommitted,
          IsoLevel::kReadCommittedFcw, IsoLevel::kRepeatableRead,
          IsoLevel::kSnapshot, IsoLevel::kSerializable};
}

bool MakeWorkload(const std::string& name, Workload* out) {
  if (name == "banking") {
    *out = MakeBankingWorkload();
  } else if (name == "payroll") {
    *out = MakePayrollWorkload();
  } else if (name == "orders") {
    *out = MakeOrdersWorkload();
  } else if (name == "orders_unique") {
    // The "one order per day" business rule: the stronger invariant makes
    // the lost-MAXDATE-update anomaly visible in the database state itself,
    // so READ-COMMITTED is statically rejected and RC-FCW is required.
    *out = MakeOrdersWorkload(/*one_order_per_day=*/true);
  } else {
    return false;
  }
  return true;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: semcor_explore [--workload=banking|payroll|orders|\n"
      "                                  orders_unique]\n"
      "                      [--mix=NAME]        (default: every mix)\n"
      "                      [--level=LEVEL|all] (ru, rc, rc_fcw, rr,\n"
      "                                           snapshot, serializable)\n"
      "                      [--threads=N] [--budget=N] [--seed=N]\n"
      "                      [--preemptions=N]   (-1 = unbounded)\n"
      "                      [--mode=enumerate|fuzz|both]\n"
      "                      [--no-shrink] [--expect-no-anomalies]\n"
      "                      [--faults=seed:N]   (deterministic fault plan;\n"
      "                                           implies schedulable undo)\n"
      "                      [--atomic-rollback] (keep rollback one step)\n"
      "                      [--deadlock-policy=youngest|wound_wait|\n"
      "                                         bounded_wait[:N]]\n"
      "                      [--max-retries=N] [--exec-items=N]\n"
      "                                          (executor smoke mode)\n");
}

bool ParseArgs(int argc, char** argv, CliOptions* opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      const size_t len = std::strlen(flag);
      if (arg.compare(0, len, flag) == 0 && arg[len] == '=') {
        return arg.c_str() + len + 1;
      }
      return nullptr;
    };
    if (const char* v = value("--workload")) {
      opts->workload = v;
    } else if (const char* v = value("--mix")) {
      opts->mix = v;
    } else if (const char* v = value("--level")) {
      opts->level = v;
    } else if (const char* v = value("--threads")) {
      opts->explore.threads = std::atoi(v);
    } else if (const char* v = value("--budget")) {
      opts->explore.budget = std::atoll(v);
    } else if (const char* v = value("--seed")) {
      opts->explore.seed = static_cast<uint64_t>(std::atoll(v));
    } else if (const char* v = value("--preemptions")) {
      opts->explore.preemption_bound = std::atoi(v);
    } else if (const char* v = value("--mode")) {
      const std::string mode = v;
      opts->explore.enumerate = mode != "fuzz";
      opts->explore.fuzz = mode != "enumerate";
      if (mode != "fuzz" && mode != "enumerate" && mode != "both") {
        return false;
      }
    } else if (const char* v = value("--faults")) {
      const std::string spec = v;
      if (spec.compare(0, 5, "seed:") != 0) return false;
      opts->explore.faults =
          FaultPlan::Seeded(static_cast<uint64_t>(std::atoll(spec.c_str() + 5)));
      opts->explore.schedulable_rollback = true;
    } else if (const char* v = value("--deadlock-policy")) {
      if (!ParseDeadlockPolicy(v, &opts->explore.deadlock_policy)) {
        return false;
      }
    } else if (const char* v = value("--max-retries")) {
      opts->max_retries = std::atoi(v);
    } else if (const char* v = value("--exec-items")) {
      opts->exec_items = std::atoi(v);
    } else if (arg == "--atomic-rollback") {
      opts->atomic_rollback = true;
    } else if (arg == "--no-shrink") {
      opts->explore.shrink = false;
    } else if (arg == "--expect-no-anomalies") {
      opts->expect_no_anomalies = true;
    } else {
      return false;
    }
  }
  if (opts->atomic_rollback) opts->explore.schedulable_rollback = false;
  return true;
}

/// Closed-loop executor smoke run: one fresh database per level, every type
/// of the workload at that level, deterministic retry backoff, optional
/// fault plan. Prints merged statistics; returns false on setup failure.
bool RunExecutorMode(const Workload& workload, const CliOptions& opts,
                     const std::vector<IsoLevel>& levels) {
  for (IsoLevel level : levels) {
    Store store;
    LockManager locks;
    TxnManager mgr(&store, &locks);
    if (!workload.setup(&store).ok()) {
      std::fprintf(stderr, "workload setup failed\n");
      return false;
    }
    FaultInjector faults;
    FaultInjector* faults_ptr = nullptr;
    if (!opts.explore.faults.empty()) {
      faults.SetPlan(opts.explore.faults);
      faults.BeginRun();
      locks.SetFaultHook([&faults](TxnId txn) {
        return FaultStatus(faults.At(FaultSite::kLockGrant, txn));
      });
      faults_ptr = &faults;
    }
    std::map<std::string, IsoLevel> assignment;
    for (const auto& [type, unused] : workload.paper_levels) {
      assignment[type] = level;
    }
    CommitLog log;
    ConcurrentExecutor executor(&mgr, opts.explore.threads);
    RetryPolicy retry;
    retry.max_attempts = opts.max_retries + 1;
    double wall = 0;
    ExecStats stats = executor.Run(
        [&](Rng& rng) { return workload.DrawFromMix(rng, assignment, level); },
        opts.exec_items, retry, &log, &wall, opts.explore.seed, faults_ptr);
    std::printf(
        "exec %s @ %s: committed=%ld aborted=%ld deadlocks=%ld "
        "fcw_conflicts=%ld injected_faults=%ld retries_exhausted=%ld "
        "(%d threads, %.2fs, policy=%s, max_retries=%d)\n",
        workload.app.name.c_str(), IsoLevelName(level), stats.committed,
        stats.aborted, stats.deadlocks, stats.fcw_conflicts,
        stats.injected_faults, stats.retries_exhausted, opts.explore.threads,
        wall, DeadlockPolicyName(opts.explore.deadlock_policy.kind),
        opts.max_retries);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  if (!ParseArgs(argc, argv, &opts)) {
    Usage();
    return 3;
  }
  Workload workload;
  if (!MakeWorkload(opts.workload, &workload)) {
    std::fprintf(stderr, "unknown workload %s\n", opts.workload.c_str());
    return 3;
  }
  std::vector<const ExploreMix*> mixes;
  if (opts.mix.empty()) {
    for (const ExploreMix& m : workload.explore_mixes) mixes.push_back(&m);
  } else {
    const ExploreMix* m = workload.FindExploreMix(opts.mix);
    if (m == nullptr) {
      std::fprintf(stderr, "workload %s has no mix %s\n",
                   opts.workload.c_str(), opts.mix.c_str());
      return 3;
    }
    mixes.push_back(m);
  }
  std::vector<IsoLevel> levels;
  if (opts.level == "all") {
    levels = AllLevels();
  } else {
    IsoLevel level;
    if (!ParseLevel(opts.level, &level)) {
      std::fprintf(stderr, "unknown level %s\n", opts.level.c_str());
      return 3;
    }
    levels.push_back(level);
  }

  if (opts.exec_items > 0) {
    return RunExecutorMode(workload, opts, levels) ? 0 : 3;
  }

  bool unsound = false;
  int64_t total_anomalies = 0;
  for (const ExploreMix* mix : mixes) {
    for (IsoLevel level : levels) {
      ExploreOptions eopts = opts.explore;
      eopts.level = level;
      Result<CrossCheckResult> result = CrossCheck(workload, *mix, eopts);
      if (!result.ok()) {
        std::fprintf(stderr, "cross-check failed: %s\n",
                     result.status().ToString().c_str());
        return 3;
      }
      std::printf("%s\n%s\n\n", result.value().Summary().c_str(),
                  result.value().exploration.Summary().c_str());
      unsound = unsound || result.value().unsound;
      total_anomalies += result.value().exploration.anomalies;
    }
  }
  if (unsound) {
    std::fprintf(stderr,
                 "FAIL: soundness cross-check violated (static correct, "
                 "dynamic anomaly)\n");
    return 1;
  }
  if (opts.expect_no_anomalies && total_anomalies > 0) {
    std::fprintf(stderr, "FAIL: %lld anomalies found (expected none)\n",
                 static_cast<long long>(total_anomalies));
    return 2;
  }
  return 0;
}
