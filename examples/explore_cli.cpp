// semcor_explore: parallel schedule-space exploration with counterexample
// shrinking, cross-checked against the paper's static level analysis.
//
//   semcor_explore --workload=banking --level=snapshot --threads=8
//                  --budget=100000 --seed=42
//
// Fault injection: --faults=seed:N runs every schedule under a deterministic
// fault plan (forced aborts, transient lock failures, crash-before-commit)
// and switches aborts to schedulable rollback, so the explorer can interleave
// undo writes with other transactions (Theorem 1's hazard at READ
// UNCOMMITTED). --exec-items=N instead runs the closed-loop concurrent
// executor as a resilience smoke test and prints its statistics.
//
// Exit codes: 0 = done (cross-check consistent), 1 = soundness violation
// (static says correct, exploration found an anomaly), 2 = anomalies found
// while --expect-no-anomalies was set, 3 = usage / setup error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/rng.h"
#include "explore/crosscheck.h"
#include "explore/session.h"
#include "txn/executor.h"
#include "txn/isolation.h"
#include "workload/workload.h"

namespace {

using namespace semcor;

struct CliOptions {
  std::string workload = "banking";
  std::string mix;          // empty = every explore mix of the workload
  std::string level = "snapshot";
  ExploreOptions explore;
  bool expect_no_anomalies = false;
  bool atomic_rollback = false;  // opt out of schedulable rollback
  int max_retries = 3;           // executor-mode retry budget
  int exec_items = 0;            // >0: executor smoke mode, items per thread
  int crash_matrix = 0;          // >0: crash-recovery mode, schedules per mix
};

bool MakeWorkload(const std::string& name, Workload* out) {
  if (name == "banking") {
    *out = MakeBankingWorkload();
  } else if (name == "payroll") {
    *out = MakePayrollWorkload();
  } else if (name == "orders") {
    *out = MakeOrdersWorkload();
  } else if (name == "orders_unique") {
    // The "one order per day" business rule: the stronger invariant makes
    // the lost-MAXDATE-update anomaly visible in the database state itself,
    // so READ-COMMITTED is statically rejected and RC-FCW is required.
    *out = MakeOrdersWorkload(/*one_order_per_day=*/true);
  } else {
    return false;
  }
  return true;
}

/// Declares every flag against `opts` plus the string-shaped ones that need
/// post-parse validation (mode / faults / deadlock policy specs). Returns
/// false (after the parser already printed the problem and usage) on any
/// unknown flag or malformed value; *help is set when --help was given.
bool ParseArgs(int argc, char** argv, CliOptions* opts, bool* help) {
  std::string mode = "both";
  std::string faults;
  std::string deadlock_policy;
  bool no_shrink = false;
  cli::Flags flags("semcor_explore",
                   "Parallel schedule-space exploration with counterexample "
                   "shrinking, cross-checked against the static analysis.");
  flags.Str("workload", &opts->workload,
            "workload (banking|payroll|orders|orders_unique)");
  flags.Str("mix", &opts->mix, "explore mix name (empty = every mix)");
  flags.Str("level", &opts->level,
            "isolation level (ru, rc, rc_fcw, rr, snapshot, serializable, "
            "ssi) or 'all'");
  flags.Int("threads", &opts->explore.threads, "exploration worker threads");
  flags.I64("budget", &opts->explore.budget, "complete-schedule budget");
  flags.U64("seed", &opts->explore.seed, "fuzz-phase seed");
  flags.Int("preemptions", &opts->explore.preemption_bound,
            "preemption bound (-1 = unbounded)");
  flags.Str("mode", &mode, "enumerate|fuzz|both");
  flags.Bool("no-shrink", &no_shrink, "keep witnesses unminimized");
  flags.Bool("expect-no-anomalies", &opts->expect_no_anomalies,
             "exit 2 if any anomaly is found");
  flags.Str("faults", &faults,
            "deterministic fault plan 'seed:N' (implies schedulable undo)");
  flags.Bool("atomic-rollback", &opts->atomic_rollback,
             "keep rollback a single step");
  flags.Str("deadlock-policy", &deadlock_policy,
            "youngest|wound_wait|bounded_wait[:N]");
  flags.Int("max-retries", &opts->max_retries, "executor-mode retry budget");
  flags.Int("exec-items", &opts->exec_items,
            "executor smoke mode: items per thread (0 = explore mode)");
  flags.Int("crash-matrix", &opts->crash_matrix,
            "crash-recovery mode: run N random schedules per mix/level "
            "through the WAL crash-point matrix (0 = explore mode)");
  if (!flags.Parse(argc, argv)) return false;
  if (flags.help_requested() || flags.version_requested()) {
    *help = true;
    return true;
  }
  if (mode != "fuzz" && mode != "enumerate" && mode != "both") {
    std::fprintf(stderr, "semcor_explore: bad --mode=%s\n", mode.c_str());
    return false;
  }
  opts->explore.enumerate = mode != "fuzz";
  opts->explore.fuzz = mode != "enumerate";
  opts->explore.shrink = !no_shrink;
  if (!faults.empty()) {
    if (faults.compare(0, 5, "seed:") != 0) {
      std::fprintf(stderr, "semcor_explore: bad --faults=%s\n", faults.c_str());
      return false;
    }
    opts->explore.faults =
        FaultPlan::Seeded(static_cast<uint64_t>(std::atoll(faults.c_str() + 5)));
    opts->explore.schedulable_rollback = true;
  }
  if (!deadlock_policy.empty() &&
      !ParseDeadlockPolicy(deadlock_policy, &opts->explore.deadlock_policy)) {
    std::fprintf(stderr, "semcor_explore: bad --deadlock-policy=%s\n",
                 deadlock_policy.c_str());
    return false;
  }
  if (opts->atomic_rollback) opts->explore.schedulable_rollback = false;
  return true;
}

/// Closed-loop executor smoke run: one fresh database per level, every type
/// of the workload at that level, deterministic retry backoff, optional
/// fault plan. Prints merged statistics; returns false on setup failure.
bool RunExecutorMode(const Workload& workload, const CliOptions& opts,
                     const std::vector<IsoLevel>& levels) {
  for (IsoLevel level : levels) {
    Store store;
    LockManager locks;
    TxnManager mgr(&store, &locks);
    if (!workload.setup(&store).ok()) {
      std::fprintf(stderr, "workload setup failed\n");
      return false;
    }
    FaultInjector faults;
    FaultInjector* faults_ptr = nullptr;
    if (!opts.explore.faults.empty()) {
      faults.SetPlan(opts.explore.faults);
      faults.BeginRun();
      locks.SetFaultHook([&faults](TxnId txn) {
        return FaultStatus(faults.At(FaultSite::kLockGrant, txn));
      });
      faults_ptr = &faults;
    }
    std::map<std::string, IsoLevel> assignment;
    for (const auto& [type, unused] : workload.paper_levels) {
      assignment[type] = level;
    }
    CommitLog log;
    ConcurrentExecutor executor(&mgr, opts.explore.threads);
    RetryPolicy retry;
    retry.max_attempts = opts.max_retries + 1;
    double wall = 0;
    ExecStats stats = executor.Run(
        [&](Rng& rng) { return workload.DrawFromMix(rng, assignment, level); },
        opts.exec_items, retry, &log, &wall, opts.explore.seed, faults_ptr);
    std::printf(
        "exec %s @ %s: committed=%ld aborted=%ld deadlocks=%ld "
        "fcw_conflicts=%ld injected_faults=%ld retries_exhausted=%ld "
        "(%d threads, %.2fs, policy=%s, max_retries=%d)\n",
        workload.app.name.c_str(), IsoLevelName(level), stats.committed,
        stats.aborted, stats.deadlocks, stats.fcw_conflicts,
        stats.injected_faults, stats.retries_exhausted, opts.explore.threads,
        wall, DeadlockPolicyName(opts.explore.deadlock_policy.kind),
        opts.max_retries);
  }
  return true;
}

/// Crash-recovery mode: for each mix/level, draw N random schedules and run
/// each through the WAL crash-point matrix — every byte prefix of the log a
/// crash could leave must recover to a commit-order prefix of the schedule's
/// history. Returns false on any mismatch (a durability violation).
bool RunCrashMatrixMode(const Workload& workload,
                        const std::vector<const ExploreMix*>& mixes,
                        const std::vector<IsoLevel>& levels,
                        const CliOptions& opts) {
  bool all_ok = true;
  for (const ExploreMix* mix : mixes) {
    for (IsoLevel level : levels) {
      ExploreSession session;
      ExploreSessionOptions sopts;
      sopts.schedulable_rollback = opts.explore.schedulable_rollback;
      sopts.deadlock_policy = opts.explore.deadlock_policy;
      if (Status s = session.Init(workload, *mix, level, sopts); !s.ok()) {
        std::fprintf(stderr, "semcor_explore: %s\n", s.ToString().c_str());
        return false;
      }
      Rng rng(opts.explore.seed);
      long points = 0, torn = 0, mismatches = 0, commits = 0;
      for (int n = 0; n < opts.crash_matrix; ++n) {
        Schedule hints;
        session.Fuzz(rng, 256, &hints);  // draw a complete random schedule
        const CrashMatrixResult cm = session.RunCrashMatrix(hints);
        points += cm.points_checked;
        torn += cm.torn_points;
        commits += cm.committed;
        mismatches += cm.mismatches;
        if (!cm.ok()) {
          all_ok = false;
          std::fprintf(stderr, "%s @ %s schedule %s\n%s\n",
                       mix->name.c_str(), IsoLevelName(level),
                       ScheduleToString(hints).c_str(), cm.Summary().c_str());
        }
      }
      std::printf(
          "crash-matrix %s @ %s: %d schedules, %ld commits, %ld crash points "
          "(%ld torn), %ld mismatches\n",
          mix->name.c_str(), IsoLevelName(level), opts.crash_matrix, commits,
          points, torn, mismatches);
    }
  }
  return all_ok;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  bool help = false;
  if (!ParseArgs(argc, argv, &opts, &help)) return 3;
  if (help) return 0;
  Workload workload;
  if (!MakeWorkload(opts.workload, &workload)) {
    std::fprintf(stderr, "unknown workload %s\n", opts.workload.c_str());
    return 3;
  }
  std::vector<const ExploreMix*> mixes;
  if (opts.mix.empty()) {
    for (const ExploreMix& m : workload.explore_mixes) mixes.push_back(&m);
  } else {
    const ExploreMix* m = workload.FindExploreMix(opts.mix);
    if (m == nullptr) {
      std::fprintf(stderr, "workload %s has no mix %s\n",
                   opts.workload.c_str(), opts.mix.c_str());
      return 3;
    }
    mixes.push_back(m);
  }
  std::vector<IsoLevel> levels;
  if (opts.level == "all") {
    for (IsoLevel level : AllLevels()) levels.push_back(level);
  } else {
    IsoLevel level;
    if (!ParseIsoLevel(opts.level, &level)) {
      std::fprintf(stderr, "unknown level %s\n", opts.level.c_str());
      return 3;
    }
    levels.push_back(level);
  }

  if (opts.exec_items > 0) {
    return RunExecutorMode(workload, opts, levels) ? 0 : 3;
  }
  if (opts.crash_matrix > 0) {
    // Exit 1: a recovery that diverged from commit-order replay is the
    // durability analogue of a soundness violation.
    return RunCrashMatrixMode(workload, mixes, levels, opts) ? 0 : 1;
  }

  bool unsound = false;
  int64_t total_anomalies = 0;
  for (const ExploreMix* mix : mixes) {
    for (IsoLevel level : levels) {
      ExploreOptions eopts = opts.explore;
      eopts.level = level;
      Result<CrossCheckResult> result = CrossCheck(workload, *mix, eopts);
      if (!result.ok()) {
        std::fprintf(stderr, "cross-check failed: %s\n",
                     result.status().ToString().c_str());
        return 3;
      }
      std::printf("%s\n%s\n\n", result.value().Summary().c_str(),
                  result.value().exploration.Summary().c_str());
      unsound = unsound || result.value().unsound;
      total_anomalies += result.value().exploration.anomalies;
    }
  }
  if (unsound) {
    std::fprintf(stderr,
                 "FAIL: soundness cross-check violated (static correct, "
                 "dynamic anomaly)\n");
    return 1;
  }
  if (opts.expect_no_anomalies && total_anomalies > 0) {
    std::fprintf(stderr, "FAIL: %lld anomalies found (expected none)\n",
                 static_cast<long long>(total_anomalies));
    return 2;
  }
  return 0;
}
