// semcor_explore: parallel schedule-space exploration with counterexample
// shrinking, cross-checked against the paper's static level analysis.
//
//   semcor_explore --workload=banking --level=snapshot --threads=8
//                  --budget=100000 --seed=42
//
// Exit codes: 0 = done (cross-check consistent), 1 = soundness violation
// (static says correct, exploration found an anomaly), 2 = anomalies found
// while --expect-no-anomalies was set, 3 = usage / setup error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "explore/crosscheck.h"
#include "workload/workload.h"

namespace {

using namespace semcor;

struct CliOptions {
  std::string workload = "banking";
  std::string mix;          // empty = every explore mix of the workload
  std::string level = "snapshot";
  ExploreOptions explore;
  bool expect_no_anomalies = false;
};

bool ParseLevel(const std::string& name, IsoLevel* out) {
  struct Entry {
    const char* name;
    IsoLevel level;
  };
  static const Entry kLevels[] = {
      {"read_uncommitted", IsoLevel::kReadUncommitted},
      {"ru", IsoLevel::kReadUncommitted},
      {"read_committed", IsoLevel::kReadCommitted},
      {"rc", IsoLevel::kReadCommitted},
      {"read_committed_fcw", IsoLevel::kReadCommittedFcw},
      {"rc_fcw", IsoLevel::kReadCommittedFcw},
      {"repeatable_read", IsoLevel::kRepeatableRead},
      {"rr", IsoLevel::kRepeatableRead},
      {"serializable", IsoLevel::kSerializable},
      {"snapshot", IsoLevel::kSnapshot},
  };
  for (const Entry& e : kLevels) {
    if (name == e.name) {
      *out = e.level;
      return true;
    }
  }
  return false;
}

std::vector<IsoLevel> AllLevels() {
  return {IsoLevel::kReadUncommitted, IsoLevel::kReadCommitted,
          IsoLevel::kReadCommittedFcw, IsoLevel::kRepeatableRead,
          IsoLevel::kSnapshot, IsoLevel::kSerializable};
}

bool MakeWorkload(const std::string& name, Workload* out) {
  if (name == "banking") {
    *out = MakeBankingWorkload();
  } else if (name == "payroll") {
    *out = MakePayrollWorkload();
  } else if (name == "orders") {
    *out = MakeOrdersWorkload();
  } else if (name == "orders_unique") {
    // The "one order per day" business rule: the stronger invariant makes
    // the lost-MAXDATE-update anomaly visible in the database state itself,
    // so READ-COMMITTED is statically rejected and RC-FCW is required.
    *out = MakeOrdersWorkload(/*one_order_per_day=*/true);
  } else {
    return false;
  }
  return true;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: semcor_explore [--workload=banking|payroll|orders|\n"
      "                                  orders_unique]\n"
      "                      [--mix=NAME]        (default: every mix)\n"
      "                      [--level=LEVEL|all] (ru, rc, rc_fcw, rr,\n"
      "                                           snapshot, serializable)\n"
      "                      [--threads=N] [--budget=N] [--seed=N]\n"
      "                      [--preemptions=N]   (-1 = unbounded)\n"
      "                      [--mode=enumerate|fuzz|both]\n"
      "                      [--no-shrink] [--expect-no-anomalies]\n");
}

bool ParseArgs(int argc, char** argv, CliOptions* opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      const size_t len = std::strlen(flag);
      if (arg.compare(0, len, flag) == 0 && arg[len] == '=') {
        return arg.c_str() + len + 1;
      }
      return nullptr;
    };
    if (const char* v = value("--workload")) {
      opts->workload = v;
    } else if (const char* v = value("--mix")) {
      opts->mix = v;
    } else if (const char* v = value("--level")) {
      opts->level = v;
    } else if (const char* v = value("--threads")) {
      opts->explore.threads = std::atoi(v);
    } else if (const char* v = value("--budget")) {
      opts->explore.budget = std::atoll(v);
    } else if (const char* v = value("--seed")) {
      opts->explore.seed = static_cast<uint64_t>(std::atoll(v));
    } else if (const char* v = value("--preemptions")) {
      opts->explore.preemption_bound = std::atoi(v);
    } else if (const char* v = value("--mode")) {
      const std::string mode = v;
      opts->explore.enumerate = mode != "fuzz";
      opts->explore.fuzz = mode != "enumerate";
      if (mode != "fuzz" && mode != "enumerate" && mode != "both") {
        return false;
      }
    } else if (arg == "--no-shrink") {
      opts->explore.shrink = false;
    } else if (arg == "--expect-no-anomalies") {
      opts->expect_no_anomalies = true;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  if (!ParseArgs(argc, argv, &opts)) {
    Usage();
    return 3;
  }
  Workload workload;
  if (!MakeWorkload(opts.workload, &workload)) {
    std::fprintf(stderr, "unknown workload %s\n", opts.workload.c_str());
    return 3;
  }
  std::vector<const ExploreMix*> mixes;
  if (opts.mix.empty()) {
    for (const ExploreMix& m : workload.explore_mixes) mixes.push_back(&m);
  } else {
    const ExploreMix* m = workload.FindExploreMix(opts.mix);
    if (m == nullptr) {
      std::fprintf(stderr, "workload %s has no mix %s\n",
                   opts.workload.c_str(), opts.mix.c_str());
      return 3;
    }
    mixes.push_back(m);
  }
  std::vector<IsoLevel> levels;
  if (opts.level == "all") {
    levels = AllLevels();
  } else {
    IsoLevel level;
    if (!ParseLevel(opts.level, &level)) {
      std::fprintf(stderr, "unknown level %s\n", opts.level.c_str());
      return 3;
    }
    levels.push_back(level);
  }

  bool unsound = false;
  int64_t total_anomalies = 0;
  for (const ExploreMix* mix : mixes) {
    for (IsoLevel level : levels) {
      ExploreOptions eopts = opts.explore;
      eopts.level = level;
      Result<CrossCheckResult> result = CrossCheck(workload, *mix, eopts);
      if (!result.ok()) {
        std::fprintf(stderr, "cross-check failed: %s\n",
                     result.status().ToString().c_str());
        return 3;
      }
      std::printf("%s\n%s\n\n", result.value().Summary().c_str(),
                  result.value().exploration.Summary().c_str());
      unsound = unsound || result.value().unsound;
      total_anomalies += result.value().exploration.anomalies;
    }
  }
  if (unsound) {
    std::fprintf(stderr,
                 "FAIL: soundness cross-check violated (static correct, "
                 "dynamic anomaly)\n");
    return 1;
  }
  if (opts.expect_no_anomalies && total_anomalies > 0) {
    std::fprintf(stderr, "FAIL: %lld anomalies found (expected none)\n",
                 static_cast<long long>(total_anomalies));
    return 2;
  }
  return 0;
}
