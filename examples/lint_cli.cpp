// semcor_lint — isolation-level linter for `.sem` transaction programs.
//
// Parses an application (transaction types + invariant + annotations), runs
// the paper's §5 advisor via the incremental pair checker, and emits
// compiler-style diagnostics comparing each txn's annotated level with the
// derived lowest correct level:
//
//   $ semcor_lint --program=examples/programs/underleveled.sem
//   underleveled.sem:21: error: Withdraw_sav @ underleveled.sem:21:
//     READ-UNCOMMITTED rejected — Thm 1 obligation [...] vs [...] fails;
//     requires READ-COMMITTED; witness: ...
//
// Exit codes: 0 clean (notes/warnings only), 1 lint errors (an annotation
// admits a semantically incorrect execution), 2 usage or parse errors.
// --strict promotes warnings to the failing exit code.

#include <cstdio>
#include <string>

#include "common/cli.h"
#include "sem/lint/lint.h"
#include "sem/lint/parse_program.h"

int main(int argc, char** argv) {
  using namespace semcor;

  std::string program_path;
  std::string format = "text";
  int threads = 1;
  bool strict = false;
  bool advise = true;
  bool warn_over = true;

  cli::Flags flags("semcor_lint",
                   "Lints isolation-level annotations of a .sem application "
                   "against the paper's semantic-correctness theorems.");
  flags.Str("program", &program_path, ".sem application file to lint");
  flags.Str("format", &format, "output format: text | json | sarif");
  flags.Int("threads", &threads, "parallel pair-checking workers");
  flags.Bool("strict", &strict, "exit non-zero on warnings too");
  flags.Bool("advise", &advise, "emit notes for unannotated txns");
  flags.Bool("warn-over-isolated", &warn_over,
             "warn when an annotation is above the derived requirement");
  if (!flags.Parse(argc, argv)) return 2;
  if (flags.help_requested() || flags.version_requested()) return 0;
  if (program_path.empty()) {
    std::fprintf(stderr, "semcor_lint: --program=FILE is required\n");
    flags.PrintUsage(stderr);
    return 2;
  }
  if (format != "text" && format != "json" && format != "sarif") {
    std::fprintf(stderr, "semcor_lint: unknown --format=%s\n", format.c_str());
    return 2;
  }

  Result<ParsedApplication> parsed = ParseApplicationFile(program_path);
  if (!parsed.ok()) {
    std::fprintf(stderr, "semcor_lint: %s\n",
                 parsed.status().ToString().c_str());
    return 2;
  }

  LintOptions options;
  options.advisor.threads = threads;
  options.advise_unannotated = advise;
  options.warn_over_isolated = warn_over;
  const LintReport report = LintApplication(parsed.value(), options);

  if (format == "json") {
    std::fputs(RenderLintJson(report).c_str(), stdout);
  } else if (format == "sarif") {
    std::fputs(RenderLintSarif(report).c_str(), stdout);
  } else {
    std::fputs(RenderLintText(report).c_str(), stdout);
  }

  if (report.errors > 0) return 1;
  if (strict && report.warnings > 0) return 1;
  return 0;
}
