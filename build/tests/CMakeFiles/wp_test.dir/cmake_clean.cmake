file(REMOVE_RECURSE
  "CMakeFiles/wp_test.dir/wp_test.cc.o"
  "CMakeFiles/wp_test.dir/wp_test.cc.o.d"
  "wp_test"
  "wp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
