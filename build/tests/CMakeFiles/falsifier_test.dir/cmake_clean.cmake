file(REMOVE_RECURSE
  "CMakeFiles/falsifier_test.dir/falsifier_test.cc.o"
  "CMakeFiles/falsifier_test.dir/falsifier_test.cc.o.d"
  "falsifier_test"
  "falsifier_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/falsifier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
