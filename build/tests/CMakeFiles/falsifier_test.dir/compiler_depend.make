# Empty compiler generated dependencies file for falsifier_test.
# This may be replaced when dependencies are built.
