file(REMOVE_RECURSE
  "CMakeFiles/obligations_test.dir/obligations_test.cc.o"
  "CMakeFiles/obligations_test.dir/obligations_test.cc.o.d"
  "obligations_test"
  "obligations_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obligations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
