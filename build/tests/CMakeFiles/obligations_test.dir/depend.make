# Empty dependencies file for obligations_test.
# This may be replaced when dependencies are built.
