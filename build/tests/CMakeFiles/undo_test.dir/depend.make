# Empty dependencies file for undo_test.
# This may be replaced when dependencies are built.
