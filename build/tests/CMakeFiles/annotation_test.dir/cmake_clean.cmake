file(REMOVE_RECURSE
  "CMakeFiles/annotation_test.dir/annotation_test.cc.o"
  "CMakeFiles/annotation_test.dir/annotation_test.cc.o.d"
  "annotation_test"
  "annotation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/annotation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
