file(REMOVE_RECURSE
  "CMakeFiles/random_schedule_test.dir/random_schedule_test.cc.o"
  "CMakeFiles/random_schedule_test.dir/random_schedule_test.cc.o.d"
  "random_schedule_test"
  "random_schedule_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
