# Empty dependencies file for random_schedule_test.
# This may be replaced when dependencies are built.
