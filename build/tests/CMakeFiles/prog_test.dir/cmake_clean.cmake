file(REMOVE_RECURSE
  "CMakeFiles/prog_test.dir/prog_test.cc.o"
  "CMakeFiles/prog_test.dir/prog_test.cc.o.d"
  "prog_test"
  "prog_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
