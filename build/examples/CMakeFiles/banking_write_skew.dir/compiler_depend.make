# Empty compiler generated dependencies file for banking_write_skew.
# This may be replaced when dependencies are built.
