file(REMOVE_RECURSE
  "CMakeFiles/banking_write_skew.dir/banking_write_skew.cpp.o"
  "CMakeFiles/banking_write_skew.dir/banking_write_skew.cpp.o.d"
  "banking_write_skew"
  "banking_write_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/banking_write_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
