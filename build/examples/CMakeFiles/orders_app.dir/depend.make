# Empty dependencies file for orders_app.
# This may be replaced when dependencies are built.
