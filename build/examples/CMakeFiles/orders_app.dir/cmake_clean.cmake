file(REMOVE_RECURSE
  "CMakeFiles/orders_app.dir/orders_app.cpp.o"
  "CMakeFiles/orders_app.dir/orders_app.cpp.o.d"
  "orders_app"
  "orders_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orders_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
