# Empty dependencies file for payroll_monitor.
# This may be replaced when dependencies are built.
