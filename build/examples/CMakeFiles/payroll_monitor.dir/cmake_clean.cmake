file(REMOVE_RECURSE
  "CMakeFiles/payroll_monitor.dir/payroll_monitor.cpp.o"
  "CMakeFiles/payroll_monitor.dir/payroll_monitor.cpp.o.d"
  "payroll_monitor"
  "payroll_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payroll_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
