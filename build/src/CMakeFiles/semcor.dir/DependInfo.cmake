
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/status.cc" "src/CMakeFiles/semcor.dir/common/status.cc.o" "gcc" "src/CMakeFiles/semcor.dir/common/status.cc.o.d"
  "/root/repo/src/common/str_util.cc" "src/CMakeFiles/semcor.dir/common/str_util.cc.o" "gcc" "src/CMakeFiles/semcor.dir/common/str_util.cc.o.d"
  "/root/repo/src/common/value.cc" "src/CMakeFiles/semcor.dir/common/value.cc.o" "gcc" "src/CMakeFiles/semcor.dir/common/value.cc.o.d"
  "/root/repo/src/lock/lock_manager.cc" "src/CMakeFiles/semcor.dir/lock/lock_manager.cc.o" "gcc" "src/CMakeFiles/semcor.dir/lock/lock_manager.cc.o.d"
  "/root/repo/src/lock/predicate_lock.cc" "src/CMakeFiles/semcor.dir/lock/predicate_lock.cc.o" "gcc" "src/CMakeFiles/semcor.dir/lock/predicate_lock.cc.o.d"
  "/root/repo/src/mvcc/version_store.cc" "src/CMakeFiles/semcor.dir/mvcc/version_store.cc.o" "gcc" "src/CMakeFiles/semcor.dir/mvcc/version_store.cc.o.d"
  "/root/repo/src/sem/check/advisor.cc" "src/CMakeFiles/semcor.dir/sem/check/advisor.cc.o" "gcc" "src/CMakeFiles/semcor.dir/sem/check/advisor.cc.o.d"
  "/root/repo/src/sem/check/annotation.cc" "src/CMakeFiles/semcor.dir/sem/check/annotation.cc.o" "gcc" "src/CMakeFiles/semcor.dir/sem/check/annotation.cc.o.d"
  "/root/repo/src/sem/check/interference.cc" "src/CMakeFiles/semcor.dir/sem/check/interference.cc.o" "gcc" "src/CMakeFiles/semcor.dir/sem/check/interference.cc.o.d"
  "/root/repo/src/sem/check/obligations.cc" "src/CMakeFiles/semcor.dir/sem/check/obligations.cc.o" "gcc" "src/CMakeFiles/semcor.dir/sem/check/obligations.cc.o.d"
  "/root/repo/src/sem/check/report.cc" "src/CMakeFiles/semcor.dir/sem/check/report.cc.o" "gcc" "src/CMakeFiles/semcor.dir/sem/check/report.cc.o.d"
  "/root/repo/src/sem/check/theorems.cc" "src/CMakeFiles/semcor.dir/sem/check/theorems.cc.o" "gcc" "src/CMakeFiles/semcor.dir/sem/check/theorems.cc.o.d"
  "/root/repo/src/sem/check/wp.cc" "src/CMakeFiles/semcor.dir/sem/check/wp.cc.o" "gcc" "src/CMakeFiles/semcor.dir/sem/check/wp.cc.o.d"
  "/root/repo/src/sem/expr/eval.cc" "src/CMakeFiles/semcor.dir/sem/expr/eval.cc.o" "gcc" "src/CMakeFiles/semcor.dir/sem/expr/eval.cc.o.d"
  "/root/repo/src/sem/expr/expr.cc" "src/CMakeFiles/semcor.dir/sem/expr/expr.cc.o" "gcc" "src/CMakeFiles/semcor.dir/sem/expr/expr.cc.o.d"
  "/root/repo/src/sem/expr/parse.cc" "src/CMakeFiles/semcor.dir/sem/expr/parse.cc.o" "gcc" "src/CMakeFiles/semcor.dir/sem/expr/parse.cc.o.d"
  "/root/repo/src/sem/expr/simplify.cc" "src/CMakeFiles/semcor.dir/sem/expr/simplify.cc.o" "gcc" "src/CMakeFiles/semcor.dir/sem/expr/simplify.cc.o.d"
  "/root/repo/src/sem/expr/subst.cc" "src/CMakeFiles/semcor.dir/sem/expr/subst.cc.o" "gcc" "src/CMakeFiles/semcor.dir/sem/expr/subst.cc.o.d"
  "/root/repo/src/sem/logic/decide.cc" "src/CMakeFiles/semcor.dir/sem/logic/decide.cc.o" "gcc" "src/CMakeFiles/semcor.dir/sem/logic/decide.cc.o.d"
  "/root/repo/src/sem/logic/dnf.cc" "src/CMakeFiles/semcor.dir/sem/logic/dnf.cc.o" "gcc" "src/CMakeFiles/semcor.dir/sem/logic/dnf.cc.o.d"
  "/root/repo/src/sem/logic/falsifier.cc" "src/CMakeFiles/semcor.dir/sem/logic/falsifier.cc.o" "gcc" "src/CMakeFiles/semcor.dir/sem/logic/falsifier.cc.o.d"
  "/root/repo/src/sem/logic/fourier_motzkin.cc" "src/CMakeFiles/semcor.dir/sem/logic/fourier_motzkin.cc.o" "gcc" "src/CMakeFiles/semcor.dir/sem/logic/fourier_motzkin.cc.o.d"
  "/root/repo/src/sem/logic/linear.cc" "src/CMakeFiles/semcor.dir/sem/logic/linear.cc.o" "gcc" "src/CMakeFiles/semcor.dir/sem/logic/linear.cc.o.d"
  "/root/repo/src/sem/prog/builder.cc" "src/CMakeFiles/semcor.dir/sem/prog/builder.cc.o" "gcc" "src/CMakeFiles/semcor.dir/sem/prog/builder.cc.o.d"
  "/root/repo/src/sem/prog/concrete_exec.cc" "src/CMakeFiles/semcor.dir/sem/prog/concrete_exec.cc.o" "gcc" "src/CMakeFiles/semcor.dir/sem/prog/concrete_exec.cc.o.d"
  "/root/repo/src/sem/prog/program.cc" "src/CMakeFiles/semcor.dir/sem/prog/program.cc.o" "gcc" "src/CMakeFiles/semcor.dir/sem/prog/program.cc.o.d"
  "/root/repo/src/sem/prog/stmt.cc" "src/CMakeFiles/semcor.dir/sem/prog/stmt.cc.o" "gcc" "src/CMakeFiles/semcor.dir/sem/prog/stmt.cc.o.d"
  "/root/repo/src/sem/rt/monitor.cc" "src/CMakeFiles/semcor.dir/sem/rt/monitor.cc.o" "gcc" "src/CMakeFiles/semcor.dir/sem/rt/monitor.cc.o.d"
  "/root/repo/src/sem/rt/oracle.cc" "src/CMakeFiles/semcor.dir/sem/rt/oracle.cc.o" "gcc" "src/CMakeFiles/semcor.dir/sem/rt/oracle.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/CMakeFiles/semcor.dir/storage/schema.cc.o" "gcc" "src/CMakeFiles/semcor.dir/storage/schema.cc.o.d"
  "/root/repo/src/storage/store.cc" "src/CMakeFiles/semcor.dir/storage/store.cc.o" "gcc" "src/CMakeFiles/semcor.dir/storage/store.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/semcor.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/semcor.dir/storage/table.cc.o.d"
  "/root/repo/src/txn/driver.cc" "src/CMakeFiles/semcor.dir/txn/driver.cc.o" "gcc" "src/CMakeFiles/semcor.dir/txn/driver.cc.o.d"
  "/root/repo/src/txn/executor.cc" "src/CMakeFiles/semcor.dir/txn/executor.cc.o" "gcc" "src/CMakeFiles/semcor.dir/txn/executor.cc.o.d"
  "/root/repo/src/txn/interpreter.cc" "src/CMakeFiles/semcor.dir/txn/interpreter.cc.o" "gcc" "src/CMakeFiles/semcor.dir/txn/interpreter.cc.o.d"
  "/root/repo/src/txn/isolation.cc" "src/CMakeFiles/semcor.dir/txn/isolation.cc.o" "gcc" "src/CMakeFiles/semcor.dir/txn/isolation.cc.o.d"
  "/root/repo/src/txn/txn.cc" "src/CMakeFiles/semcor.dir/txn/txn.cc.o" "gcc" "src/CMakeFiles/semcor.dir/txn/txn.cc.o.d"
  "/root/repo/src/workload/banking.cc" "src/CMakeFiles/semcor.dir/workload/banking.cc.o" "gcc" "src/CMakeFiles/semcor.dir/workload/banking.cc.o.d"
  "/root/repo/src/workload/mailing.cc" "src/CMakeFiles/semcor.dir/workload/mailing.cc.o" "gcc" "src/CMakeFiles/semcor.dir/workload/mailing.cc.o.d"
  "/root/repo/src/workload/orders_app.cc" "src/CMakeFiles/semcor.dir/workload/orders_app.cc.o" "gcc" "src/CMakeFiles/semcor.dir/workload/orders_app.cc.o.d"
  "/root/repo/src/workload/payroll.cc" "src/CMakeFiles/semcor.dir/workload/payroll.cc.o" "gcc" "src/CMakeFiles/semcor.dir/workload/payroll.cc.o.d"
  "/root/repo/src/workload/tpcc.cc" "src/CMakeFiles/semcor.dir/workload/tpcc.cc.o" "gcc" "src/CMakeFiles/semcor.dir/workload/tpcc.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/CMakeFiles/semcor.dir/workload/workload.cc.o" "gcc" "src/CMakeFiles/semcor.dir/workload/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
