src/CMakeFiles/semcor.dir/txn/isolation.cc.o: \
 /root/repo/src/txn/isolation.cc /usr/include/stdc-predef.h \
 /root/repo/src/txn/isolation.h
