# Empty compiler generated dependencies file for semcor.
# This may be replaced when dependencies are built.
