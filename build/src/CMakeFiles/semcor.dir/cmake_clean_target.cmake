file(REMOVE_RECURSE
  "libsemcor.a"
)
