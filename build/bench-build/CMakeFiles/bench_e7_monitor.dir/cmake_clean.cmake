file(REMOVE_RECURSE
  "../bench/bench_e7_monitor"
  "../bench/bench_e7_monitor.pdb"
  "CMakeFiles/bench_e7_monitor.dir/bench_e7_monitor.cc.o"
  "CMakeFiles/bench_e7_monitor.dir/bench_e7_monitor.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
