# Empty dependencies file for bench_e7_monitor.
# This may be replaced when dependencies are built.
