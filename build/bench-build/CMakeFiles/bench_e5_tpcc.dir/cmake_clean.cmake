file(REMOVE_RECURSE
  "../bench/bench_e5_tpcc"
  "../bench/bench_e5_tpcc.pdb"
  "CMakeFiles/bench_e5_tpcc.dir/bench_e5_tpcc.cc.o"
  "CMakeFiles/bench_e5_tpcc.dir/bench_e5_tpcc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_tpcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
