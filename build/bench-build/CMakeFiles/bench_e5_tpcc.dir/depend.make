# Empty dependencies file for bench_e5_tpcc.
# This may be replaced when dependencies are built.
