file(REMOVE_RECURSE
  "../bench/bench_e6_substrate"
  "../bench/bench_e6_substrate.pdb"
  "CMakeFiles/bench_e6_substrate.dir/bench_e6_substrate.cc.o"
  "CMakeFiles/bench_e6_substrate.dir/bench_e6_substrate.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_substrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
