file(REMOVE_RECURSE
  "../bench/bench_e3_orders_perf"
  "../bench/bench_e3_orders_perf.pdb"
  "CMakeFiles/bench_e3_orders_perf.dir/bench_e3_orders_perf.cc.o"
  "CMakeFiles/bench_e3_orders_perf.dir/bench_e3_orders_perf.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_orders_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
