# Empty dependencies file for bench_e3_orders_perf.
# This may be replaced when dependencies are built.
