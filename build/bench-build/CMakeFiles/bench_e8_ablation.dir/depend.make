# Empty dependencies file for bench_e8_ablation.
# This may be replaced when dependencies are built.
