file(REMOVE_RECURSE
  "../bench/bench_e8_ablation"
  "../bench/bench_e8_ablation.pdb"
  "CMakeFiles/bench_e8_ablation.dir/bench_e8_ablation.cc.o"
  "CMakeFiles/bench_e8_ablation.dir/bench_e8_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
