file(REMOVE_RECURSE
  "../bench/bench_e1_obligations"
  "../bench/bench_e1_obligations.pdb"
  "CMakeFiles/bench_e1_obligations.dir/bench_e1_obligations.cc.o"
  "CMakeFiles/bench_e1_obligations.dir/bench_e1_obligations.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_obligations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
