# Empty dependencies file for bench_e1_obligations.
# This may be replaced when dependencies are built.
