file(REMOVE_RECURSE
  "../bench/bench_e2_levels"
  "../bench/bench_e2_levels.pdb"
  "CMakeFiles/bench_e2_levels.dir/bench_e2_levels.cc.o"
  "CMakeFiles/bench_e2_levels.dir/bench_e2_levels.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
