# Empty dependencies file for bench_e4_write_skew.
# This may be replaced when dependencies are built.
