file(REMOVE_RECURSE
  "../bench/bench_e4_write_skew"
  "../bench/bench_e4_write_skew.pdb"
  "CMakeFiles/bench_e4_write_skew.dir/bench_e4_write_skew.cc.o"
  "CMakeFiles/bench_e4_write_skew.dir/bench_e4_write_skew.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_write_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
